"""CLI for the engine microbenchmark suite.

Examples
--------
Run everything and write the trajectory file::

    python -m repro.perf --out benchmarks/results/BENCH_kernel.json

CI perf-smoke: run, then fail on simulated-headline drift against the
committed goldens::

    python -m repro.perf --out /tmp/bench.json \
        --check benchmarks/results/BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.perf import (
    SCENARIOS,
    compare_headlines,
    dump_report,
    format_report,
    load_report,
    run_suite,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Engine events/sec + wall-clock microbenchmarks "
        "(emits BENCH_kernel.json).",
    )
    parser.add_argument(
        "names", nargs="*", metavar="SCENARIO",
        help="scenario name(s) to run (default: all; see --list)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the JSON report to PATH",
    )
    parser.add_argument(
        "--check", metavar="GOLDEN", default=None,
        help="compare simulated headline numbers against a golden report; "
        "exit 1 on any drift",
    )
    parser.add_argument(
        "--scenarios", metavar="NAMES", default=None,
        help="comma-separated subset to run (default: all)",
    )
    parser.add_argument(
        "--gate-events-ratio", metavar="R", type=float, default=None,
        help="with --check: also fail if any scenario's events/s falls "
        "below R x the golden value (e.g. 0.8 = tolerate a 20%% drop); "
        "throughput is machine-dependent, so this is a smoke gate, not "
        "a benchmark",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    from repro.perf import _ensure_scenarios_loaded

    _ensure_scenarios_loaded()
    if args.list:
        for name, fn in SCENARIOS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<16} {doc}")
        return 0

    names = None
    if args.scenarios:
        names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
    if args.names:
        names = (names or []) + list(args.names)

    report = run_suite(names)
    print(format_report(report))

    if args.out:
        dump_report(report, args.out)
        print(f"\nwrote {args.out}")

    if args.check:
        golden = load_report(args.check)
        drift = compare_headlines(report, golden)
        if drift:
            print(f"\nHEADLINE DRIFT vs {args.check}:", file=sys.stderr)
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nheadlines match {args.check}")
        if args.gate_events_ratio is not None:
            slow = _events_regressions(report, golden, args.gate_events_ratio)
            if slow:
                print(
                    f"\nEVENTS/S REGRESSION vs {args.check} "
                    f"(gate {args.gate_events_ratio:g}x):",
                    file=sys.stderr,
                )
                for line in slow:
                    print(f"  {line}", file=sys.stderr)
                return 1
            print(f"events/s within {args.gate_events_ratio:g}x of golden")
    elif args.gate_events_ratio is not None:
        parser.error("--gate-events-ratio requires --check")
    return 0


def _events_regressions(report, golden, ratio: float) -> list[str]:
    """Scenarios whose throughput fell below ratio x the golden's."""
    slow: list[str] = []
    mine = report.get("scenarios", {})
    for name, gold in golden.get("scenarios", {}).items():
        m = mine.get(name)
        want = gold.get("events_per_s", 0)
        if m is None or not want:
            continue
        got = m.get("events_per_s", 0)
        if got < ratio * want:
            slow.append(f"{name}: {got} events/s < {ratio:g} x golden {want}")
    return slow


if __name__ == "__main__":
    sys.exit(main())
