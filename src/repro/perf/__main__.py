"""CLI for the engine microbenchmark suite.

Examples
--------
Run everything and write the trajectory file::

    python -m repro.perf --out benchmarks/results/BENCH_kernel.json

CI perf-smoke: run, then fail on simulated-headline drift against the
committed goldens::

    python -m repro.perf --out /tmp/bench.json \
        --check benchmarks/results/BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.perf import (
    SCENARIOS,
    compare_headlines,
    dump_report,
    format_report,
    load_report,
    run_suite,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Engine events/sec + wall-clock microbenchmarks "
        "(emits BENCH_kernel.json).",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the JSON report to PATH",
    )
    parser.add_argument(
        "--check", metavar="GOLDEN", default=None,
        help="compare simulated headline numbers against a golden report; "
        "exit 1 on any drift",
    )
    parser.add_argument(
        "--scenarios", metavar="NAMES", default=None,
        help="comma-separated subset to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    from repro.perf import _ensure_scenarios_loaded

    _ensure_scenarios_loaded()
    if args.list:
        for name, fn in SCENARIOS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<16} {doc}")
        return 0

    names = None
    if args.scenarios:
        names = [n.strip() for n in args.scenarios.split(",") if n.strip()]

    report = run_suite(names)
    print(format_report(report))

    if args.out:
        dump_report(report, args.out)
        print(f"\nwrote {args.out}")

    if args.check:
        golden = load_report(args.check)
        drift = compare_headlines(report, golden)
        if drift:
            print(f"\nHEADLINE DRIFT vs {args.check}:", file=sys.stderr)
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\nheadlines match {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
