"""The engine microbenchmark scenarios.

Each scenario is a fully seeded simulation slice; its ``headline`` dict
holds only *simulated* quantities, so the numbers are identical on every
machine and across every engine optimisation that honours the
determinism guarantee.  Scenario groups:

* ``fabric_churn`` / ``fabric_sparse`` — the fair-share reallocation hot
  path in isolation (the bottleneck of fig8-fig11 and A1-A8);
* ``fig8_proxy`` / ``fig10_proxy`` / ``a1_proxy`` — reduced-scale
  replicas of paper benchmarks (files-per-job spread, overlapping jobs
  under background load, huge-file N-to-1), end-to-end through PFTool;
* ``store_churn`` / ``mpisim_fanout`` — kernel queue and message-plane
  churn (Store/FilterStore settle loops, delivery timers);
* ``s1_scheduler`` — the archive-as-a-service multi-tenant flood
  (ROADMAP item 1): >1000 jobs in flight across 12 weighted tenants
  under fair-share admission control.
"""

from __future__ import annotations

from repro.netsim.topology import build_archive_site
from repro.perf import ScenarioOutcome, scenario
from repro.sim import Environment, FilterStore, RandomStreams, Store

MB = 1_000_000
GB = 1_000_000_000

#: calendar-queue counters folded across multi-environment scenarios
_QUEUE_COUNTERS = ("wheel_pushes", "overflow_pushes", "rebases", "migrations")


# ---------------------------------------------------------------------------
# pure fabric scenarios
# ---------------------------------------------------------------------------

@scenario("fabric_churn")
def fabric_churn(seed: int = 4242) -> ScenarioOutcome:
    """Overlapping transfers across the paper site's shared trunk.

    ~600 flows with Poisson arrivals and lognormal sizes, plus mid-run
    trunk degradation/repair — every arrival, departure and capacity
    change hits the fair-share allocator on one big shared component.
    """
    env = Environment()
    topo = build_archive_site(env)
    fab = topo.fabric
    rng = RandomStreams(seed).stream("fabric-churn")
    n_transfers = 600
    done_count = [0]

    endpoints = (
        [("scratch", fta) for fta in topo.fta_nodes]
        + [(fta, ds) for fta in topo.fta_nodes[:4] for ds in topo.disk_servers]
        + [("scratch", ds) for ds in topo.disk_servers]
    )

    def one(start: float, src: str, dst: str, nbytes: float, weight: float):
        yield env.timeout(start)
        yield fab.transfer(src, dst, nbytes, weight=weight)
        done_count[0] += 1

    start = 0.0
    for k in range(n_transfers):
        start += float(rng.exponential(0.08))
        src, dst = endpoints[int(rng.integers(0, len(endpoints)))]
        nbytes = float(rng.lognormal(mean=20.5, sigma=1.1))  # ~1.3 GB median
        weight = float(rng.uniform(1.0, 4.0))
        env.process(one(start, src, dst, nbytes, weight))

    def churn_trunk():
        # trunk degrades and recovers twice while traffic is in flight
        for factor in (0.4, 1.0, 0.6, 1.0):
            yield env.timeout(8.0)
            fab.set_link_capacity("site-trunk", factor * 2500 * MB)

    env.process(churn_trunk())
    env.run()
    return ScenarioOutcome(
        env=env,
        headline={
            "transfers_done": done_count[0],
            "bytes_delivered": round(fab.bytes_delivered, 3),
            "end_time": round(env.now, 9),
        },
        fabrics=(fab,),
    )


@scenario("fabric_sparse")
def fabric_sparse(seed: int = 77) -> ScenarioOutcome:
    """Many *independent* link pairs — disjoint allocation components.

    40 isolated src->dst pairs each carrying its own transfer stream.  A
    flow event on one pair can provably never move another pair's
    bottleneck, so an incremental allocator touches one component per
    event while a batch solver pays for all 40.
    """
    env = Environment()
    from repro.netsim.fabric import Fabric

    fab = Fabric(env, name="sparse")
    n_pairs = 40
    for i in range(n_pairs):
        fab.add_link(f"src{i}", f"dst{i}", capacity=1250 * MB, latency=1e-5)

    rng = RandomStreams(seed).stream("fabric-sparse")
    done_count = [0]

    def pump(i: int, n: int, seed_offset: int):
        prng = RandomStreams(1000 + seed_offset).stream(f"pair{i}")
        for _ in range(n):
            yield env.timeout(float(prng.exponential(0.5)))
            yield fab.transfer(
                f"src{i}", f"dst{i}", float(prng.lognormal(19.0, 0.8))
            )
            done_count[0] += 1

    per_pair = 12
    for i in range(n_pairs):
        env.process(pump(i, per_pair, int(rng.integers(0, 1 << 30))))
    env.run()
    return ScenarioOutcome(
        env=env,
        headline={
            "transfers_done": done_count[0],
            "bytes_delivered": round(fab.bytes_delivered, 3),
            "end_time": round(env.now, 9),
        },
        fabrics=(fab,),
    )


# ---------------------------------------------------------------------------
# reduced paper-figure scenarios (end-to-end through PFTool)
# ---------------------------------------------------------------------------

@scenario("fig10_proxy")
def fig10_proxy(seed: int = 2009) -> ScenarioOutcome:
    """Reduced Figure-10 trace: overlapping archive jobs + background load.

    8 jobs (each <=24 files) with Poisson arrivals on the full simulated
    site while competing bursts share the trunk — the same shape as
    ``benchmarks/test_fig10_data_rate.py`` at ~1/10 scale.
    """
    from repro.archive import ArchiveParams, ParallelArchiveSystem
    from repro.pftool import PftoolConfig
    from repro.workloads import generate_open_science_trace
    from repro.workloads.generators import materialize_job

    env = Environment()
    system = ParallelArchiveSystem(env, ArchiveParams())
    fab = system.topology.fabric
    trace = generate_open_science_trace(seed=seed)
    rng = RandomStreams(seed).stream("fig10-proxy")
    bg_rng = RandomStreams(seed).stream("fig10-proxy-bg")
    jobs = trace.jobs[:8]

    total = {"bytes": 0, "files": 0, "jobs_done": 0}
    stop = {"flag": False}
    all_done = env.event()

    def background():
        nodes = system.topology.fta_nodes
        while not stop["flag"]:
            evs = [
                fab.transfer(
                    "scratch",
                    nodes[int(bg_rng.integers(0, len(nodes)))],
                    float(bg_rng.exponential(10 * GB)),
                    weight=float(bg_rng.uniform(1.0, 5.0)),
                    tag="background",
                )
                for _ in range(int(bg_rng.integers(2, 5)))
            ]
            for ev in evs:
                yield ev
            yield env.timeout(float(bg_rng.exponential(5.0)))

    def one_job(k, job, start):
        yield env.timeout(start)
        sj = job.scaled(24)
        materialize_job(system.scratch_fs, sj, f"/jobs/j{k:02d}")
        cfg = PftoolConfig(
            num_workers=int(rng.integers(4, 13)), num_readdir=2,
            num_tapeprocs=0, stat_batch=32, copy_batch=8,
        )
        stats = yield system.archive(f"/jobs/j{k:02d}", f"/arc/j{k:02d}", cfg).done
        total["bytes"] += stats.bytes_copied
        total["files"] += stats.files_copied
        total["jobs_done"] += 1
        if total["jobs_done"] == len(jobs):
            all_done.succeed(None)

    env.process(background())
    start = 0.0
    for k, job in enumerate(jobs):
        start += float(rng.exponential(20.0))
        env.process(one_job(k, job, start))
    env.run(until=all_done)
    stop["flag"] = True
    env.run()
    return ScenarioOutcome(
        env=env,
        headline={
            "jobs_done": total["jobs_done"],
            "files_copied": total["files"],
            "bytes_copied": total["bytes"],
            "end_time": round(env.now, 9),
        },
        fabrics=(fab,),
    )


@scenario("fig8_proxy")
def fig8_proxy(seed: int = 2009) -> ScenarioOutcome:
    """Reduced Figure-8 workload: files-per-job spread through PFTool.

    Six overlapping archive jobs whose file counts span two-plus
    decades (1 .. ~120 files, drawn from the calibrated open-science
    trace), all through the full simulated site — the figure's point is
    the per-job file-count spread, so the headline carries the spread
    alongside the usual conservation totals.
    """
    from repro.archive import ArchiveParams, ParallelArchiveSystem
    from repro.pftool import PftoolConfig
    from repro.workloads import generate_open_science_trace
    from repro.workloads.generators import materialize_job

    env = Environment()
    system = ParallelArchiveSystem(env, ArchiveParams())
    fab = system.topology.fabric
    trace = generate_open_science_trace(seed=seed)
    rng = RandomStreams(seed).stream("fig8-proxy")
    scales = (1, 4, 12, 30, 60, 120)
    jobs = trace.jobs[: len(scales)]

    total = {"bytes": 0, "files": 0, "jobs_done": 0}
    spread = {"min": None, "max": 0}

    def one_job(k, job, start, n_files):
        yield env.timeout(start)
        sj = job.scaled(n_files)
        materialize_job(system.scratch_fs, sj, f"/jobs/f{k:02d}")
        cfg = PftoolConfig(
            num_workers=int(rng.integers(4, 9)), num_readdir=2,
            num_tapeprocs=0, stat_batch=32, copy_batch=8,
        )
        stats = yield system.archive(f"/jobs/f{k:02d}", f"/arc/f{k:02d}", cfg).done
        total["bytes"] += stats.bytes_copied
        total["files"] += stats.files_copied
        total["jobs_done"] += 1
        lo = spread["min"]
        spread["min"] = stats.files_copied if lo is None else min(lo, stats.files_copied)
        spread["max"] = max(spread["max"], stats.files_copied)

    start = 0.0
    for k, (job, n_files) in enumerate(zip(jobs, scales)):
        start += float(rng.exponential(8.0))
        env.process(one_job(k, job, start, n_files))
    env.run()
    return ScenarioOutcome(
        env=env,
        headline={
            "jobs_done": total["jobs_done"],
            "files_copied": total["files"],
            "files_per_job_min": spread["min"] or 0,
            "files_per_job_max": spread["max"],
            "bytes_copied": total["bytes"],
            "end_time": round(env.now, 9),
        },
        fabrics=(fab,),
    )


@scenario("a1_proxy")
def a1_proxy() -> ScenarioOutcome:
    """Reduced A1: one 8 GB file copied N-to-1 with 4 and 16 workers."""
    from repro.archive import ArchiveParams, ParallelArchiveSystem
    from repro.pftool import PftoolConfig
    from repro.tapesim import TapeSpec
    from repro.workloads import huge_file_campaign

    headline: dict[str, float] = {}
    env_last = None
    fabrics = []
    events_total = 0
    peak = 0
    instants_total = 0
    batch_max = 0
    wheel_totals = [0] * len(_QUEUE_COUNTERS)
    spec = TapeSpec(
        native_rate=120e6, load_time=10.0, unload_time=10.0, rewind_full=40.0,
        seek_base=1.0, locate_rate=10e9, label_verify=5.0, backhitch=1.93,
        capacity=800 * GB,
    )
    for workers in (4, 16):
        env = Environment()
        system = ParallelArchiveSystem(
            env,
            ArchiveParams(n_fta=10, n_disk_servers=5, n_tape_drives=1,
                          n_scratch_tapes=4, tape_spec=spec),
        )
        huge_file_campaign(system.scratch_fs, "/big", 1, 8 * GB)
        cfg = PftoolConfig(
            num_workers=workers, num_readdir=1, num_tapeprocs=0,
            chunk_threshold=1 * GB, copy_chunk_size=512 * MB,
            fuse_threshold=10**15,
        )
        stats = env.run(system.archive("/big", "/a", cfg).done)
        headline[f"duration_w{workers}"] = round(stats.duration, 9)
        events_total += env.events_processed
        peak = max(peak, env.peak_queue_len)
        instants_total += env.instants
        batch_max = max(batch_max, env.max_instant_batch)
        for i, attr in enumerate(_QUEUE_COUNTERS):
            wheel_totals[i] += getattr(env._queue, attr)
        fabrics.append(system.topology.fabric)
        env_last = env
    # fold both runs' event/queue counters into the reported environment
    env_last.events_processed = events_total
    env_last.peak_queue_len = peak
    env_last.instants = instants_total
    env_last.max_instant_batch = batch_max
    for i, attr in enumerate(_QUEUE_COUNTERS):
        setattr(env_last._queue, attr, wheel_totals[i])
    return ScenarioOutcome(env=env_last, headline=headline, fabrics=tuple(fabrics))


# ---------------------------------------------------------------------------
# kernel queue scenarios
# ---------------------------------------------------------------------------

@scenario("store_churn")
def store_churn() -> ScenarioOutcome:
    """Store/FilterStore settle-loop churn plus mass get-cancellation.

    30k items through a bounded FIFO store, 6k filtered receives against
    a mailbox, and 10k parked gets cancelled in one sweep — the queue
    operations PFTool's ranks execute per file.
    """
    env = Environment()
    fifo = Store(env, capacity=64)
    mail = FilterStore(env)
    moved = [0, 0]

    n_items = 30_000

    def producer():
        for i in range(n_items):
            yield fifo.put(i)

    def consumer():
        for _ in range(n_items):
            yield fifo.get()
            moved[0] += 1

    n_msgs = 6_000

    def mail_producer():
        for i in range(n_msgs):
            yield mail.put((i % 7, i))
            if i % 64 == 0:
                yield env.timeout(0.001)

    def mail_consumer(residue):
        for _ in range(n_msgs // 7 + (1 if residue < n_msgs % 7 else 0)):
            yield mail.get(lambda m, r=residue: m[0] == r)
            moved[1] += 1

    def mass_cancel():
        # 10k parked gets withdrawn without ever receiving an item —
        # the StoreGet.cancel O(1) regression scenario
        idle = Store(env)
        gets = [idle.get() for _ in range(10_000)]
        yield env.timeout(0.5)
        for g in gets:
            g.cancel()
        yield idle.put("drain")
        item = yield idle.get()
        assert item == "drain"

    env.process(producer())
    env.process(consumer())
    env.process(mail_producer())
    for r in range(7):
        env.process(mail_consumer(r))
    env.process(mass_cancel())
    env.run()
    return ScenarioOutcome(
        env=env,
        headline={
            "fifo_moved": moved[0],
            "mail_moved": moved[1],
            "end_time": round(env.now, 9),
        },
    )


@scenario("mpisim_fanout")
def mpisim_fanout() -> ScenarioOutcome:
    """Manager/worker message plane: request-assign-report round trips.

    32 workers each complete 150 work items against rank 0 — the
    per-message delivery cost (timer + mailbox put) dominates, which is
    exactly what the pooled delivery fast path targets.
    """
    from repro.mpisim import SimComm

    env = Environment()
    n_workers = 32
    per_worker = 150
    comm = SimComm(env, size=n_workers + 1)
    done = [0]

    TAG_REQ, TAG_WORK, TAG_DONE = 1, 2, 3

    def manager():
        remaining = n_workers * per_worker
        handed = 0
        while remaining:
            msg = yield comm.recv(0)
            if msg.tag == TAG_REQ:  # noqa: RA002 - bench protocol has 2 tags only
                comm.send(0, msg.source, ("work", handed), TAG_WORK)
                handed += 1
            elif msg.tag == TAG_DONE:
                remaining -= 1

    def worker(rank):
        for _ in range(per_worker):
            comm.send(rank, 0, "req", TAG_REQ)
            yield comm.recv(rank, source=0, tag=TAG_WORK)
            yield env.timeout(0.001)
            comm.send(rank, 0, "done", TAG_DONE)
            done[0] += 1

    env.process(manager())
    for r in range(1, n_workers + 1):
        env.process(worker(r))
    env.run()
    return ScenarioOutcome(
        env=env,
        headline={
            "items_done": done[0],
            "messages_sent": comm.messages_sent,
            "end_time": round(env.now, 9),
        },
    )


# ---------------------------------------------------------------------------
# archive-as-a-service scenario
# ---------------------------------------------------------------------------

@scenario("s1_scheduler")
def s1_scheduler(seed: int = 1001) -> ScenarioOutcome:
    """Benchmark S1: the multi-tenant scheduler flood.

    12 weighted tenants burst 1400 tiny archive jobs at the service;
    admission control caps the FTA pool while stride fair-share picks
    dispatch order, so >1000 jobs sit in the system at the peak.  The
    headline carries the scheduler's own conservation and fairness
    numbers alongside the usual event-count metrics.
    """
    from repro.scheduler.scenario import S1Params, run_s1

    result = run_s1(S1Params(seed=seed))
    return ScenarioOutcome(
        env=result["env"],
        headline=result["headline"],
        fabrics=(result["system"].topology.fabric,),
    )
