"""Disaster drills: the D* benchmark family (ROADMAP item 4(c)).

Each drill runs the same seeded workload twice against the small fast
scheduler site — once with a sustained-failure regime armed (the fault
run) and once without (the uncrashed oracle) — and gates on the pair:

* **D1** ``d1_library_outage`` — the whole tape library goes dark
  mid-run.  Retrieves park on the ``library-fenced`` admission reason
  while archives keep flowing (the bounded-goodput floor), then drain
  after repair.
* **D2** ``d2_fta_pool_loss`` — half the FTA pool drops in a staggered
  correlated window.  Detectors fence the nodes, their active jobs
  drain through the preempt→resume journal path, brownout admission
  sheds the lowest-share tenant, and jittered readmission restores
  service without a stampede.
* **D3** ``d3_catalog_corruption`` — seeded tape-index row damage.
  The catalog detector fails its sample against TSM's ground truth,
  retrieves park on ``catalog-fenced``, a scheduled reconcile
  (re-export) repairs the index, and the parked work flows.

Gates (all self-asserting; a drill that survives them returns a
deterministic headline for the golden):

* conservation — ``submitted == completed + cancelled + preempted`` and
  nothing accepted is lost (zero cancels, every ticket terminal);
* every health-plane preemption was resumed and the resume completed;
* the fault run's end state (file sizes + content tokens under the
  archive and retrieve roots) is byte-identical to the oracle's;
* archives completed *inside* the regime window meet the goodput floor;
* circuit breakers only ever move along legal edges (never
  ``half_open -> closed`` without a probe success — the transition
  ledger is checked edge by edge).

``REPRO_D_SEED`` offsets every drill's seed (the nightly seed-sweep
uses it); the default 0 reproduces the goldens in BENCH_kernel.json.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults import FaultPlan
from repro.health.detector import DetectorConfig
from repro.health.monitor import SiteHealthMonitor, verify_catalog
from repro.perf import ScenarioOutcome, scenario
from repro.pftool import PftoolConfig
from repro.recovery.chaos import end_state
from repro.scheduler.admission import AdmissionPolicy, DegradedModePolicy
from repro.scheduler.queues import COMPLETED, PREEMPTED, TERMINAL_STATES
from repro.scheduler.scenario import build_site
from repro.scheduler.service import ArchiveService, SchedulerConfig
from repro.sim import Environment, RandomStreams
from repro.trace import tracing
from repro.trace.assertions import TraceAssertions

__all__ = ["DrillSpec", "run_drill", "DRILLS"]

MB = 1_000_000

#: seed offset applied to every drill (the nightly sweep sets it)
D_SEED = int(os.environ.get("REPRO_D_SEED", "0"))

#: fast-probing detectors sized for sim-minute drills
_DETECTORS = DetectorConfig(
    probe_interval=2.0, phi_threshold=3.0, down_after=2,
    probe_backoff=1.0, probe_backoff_max=4.0,
    breaker_failures=2, breaker_reset=12.0,
)

#: legal breaker edges; anything else (notably half_open->closed without
#: a probe success, which cannot produce this edge list) fails the gate
_LEGAL_EDGES = {
    ("closed", "open"),
    ("open", "half_open"),
    ("half_open", "open"),
    ("half_open", "closed"),
}

_TENANTS = (("ops", 3.0), ("sci", 2.0), ("scavenger", 1.0))


def _drill_cfg() -> PftoolConfig:
    # generous stall/retry budget: jobs dispatched into a regime must
    # survive it, not abort into the watchdog
    return PftoolConfig(
        num_workers=2, num_readdir=1, num_tapeprocs=1,
        stat_batch=8, copy_batch=4,
        stall_timeout=100000.0, retry_limit=8,
        retry_backoff=2.0, retry_backoff_max=30.0,
    )


def _degraded() -> DegradedModePolicy:
    return DegradedModePolicy(
        brownout_max_active=2, brownout_drive_reserve=0,
        shed_fraction=0.34, readmit_interval=4.0, readmit_jitter=2.0,
        node_down_brownout_fraction=0.5,
    )


@dataclass(frozen=True)
class DrillSpec:
    """One disaster drill: sizing, regime, window and floor."""

    name: str
    seed: int
    #: phase-A trees archived (and optionally migrated) before the drill
    n_cold: int
    #: phase-B jobs fed across the regime window
    n_jobs: int
    mean_arrival: float
    #: job index -> "archive" | "retrieve"
    op_of: Callable[[int], str]
    #: add the regime(s) to the plan; times are relative to arm (= end
    #: of phase A)
    arm: Callable[[FaultPlan, list], FaultPlan]
    #: migrate phase-A data to tape (stubs) so retrieves recall
    migrate: bool = False
    #: [start, end) of the regime, relative to arm — the goodput window
    window: tuple = (0.0, 0.0)
    #: archives that must complete inside the window (fault run)
    goodput_floor: int = 0
    #: sim seconds after arm at which a reconcile re-export runs (D3)
    reconcile_at: Optional[float] = None
    #: components that must be seen down during the fault run
    must_fence: tuple = ()
    #: admission reasons that must park work during the fault run
    must_park: tuple = ()


def _sizes(rng, n: int, mean_mb: float = 8.0) -> list:
    return [
        max(1 * MB, int(rng.lognormal(mean=_mu(mean_mb * MB), sigma=0.4)))
        for _ in range(n)
    ]


def _mu(mean: float, sigma: float = 0.4) -> float:
    import math

    return math.log(mean) - sigma * sigma / 2.0


def _digest_crc(digests: dict) -> int:
    """Stable CRC over the end-state digests (headline-comparable)."""
    canon = {
        root: {rel: [size, str(token)] for rel, (size, token) in d.items()}
        for root, d in digests.items()
    }
    return zlib.crc32(json.dumps(canon, sort_keys=True).encode())


def _canonical_digests(system, want_back: bool) -> dict:
    """End-state digests with tokens canonicalised to source paths.

    Raw content tokens embed process-global inode numbers, so two legs
    of the same drill in one process disagree on every absolute token.
    Mapping each copied token back through *this leg's* source trees
    yields a digest that is byte-comparable across legs AND asserts
    copy fidelity: a destination whose token matches no source file
    keeps its raw token and can never match the oracle.
    """
    token_of: dict = {}
    for root in ("/cold", "/jobs"):
        try:
            entries = end_state(system.scratch_fs, root)
        except Exception:
            continue  # root absent in this drill
        for rel in sorted(entries):
            _size, tok = entries[rel]
            token_of.setdefault(tok, f"{root.lstrip('/')}/{rel}")
    out = {}
    roots = [("arc", system.archive_fs, "/arc")]
    if want_back:
        roots.append(("back", system.scratch_fs, "/back"))
    for key, fs, root in roots:
        out[key] = {
            rel: (size, token_of.get(tok, ("raw", tok)))
            for rel, (size, tok) in end_state(fs, root).items()
        }
    return out


def _run_once(spec: DrillSpec, seed: int, fault: bool) -> dict:
    """One drill leg (fault or oracle); returns the raw result bundle."""
    from repro.workloads.generators import preload_tree

    with tracing() as tracer:
        env = Environment()
        system = build_site(env)
        service = ArchiveService(system, SchedulerConfig(
            policy=AdmissionPolicy(slots_per_node=12, max_active_jobs=6,
                                   drive_reserve=1),
            default_cfg=_drill_cfg(),
        ))
        for name, weight in _TENANTS:
            service.add_tenant(name, weight=weight)

        # -- phase A: cold data in the archive (and on tape) -----------
        size_rng = RandomStreams(seed).stream(f"{spec.name}-sizes")
        for i in range(spec.n_cold):
            preload_tree(system.scratch_fs, f"/cold/t{i}",
                         _sizes(size_rng, 3))
            service.submit(_TENANTS[i % len(_TENANTS)][0], "archive",
                           f"/cold/t{i}", f"/arc/cold/t{i}")
        env.run(service.drain())
        if spec.migrate:
            env.run(system.migrate_to_tape())
        t0 = env.now

        # health plane attaches after the prep: during migration the
        # tape index legitimately trails TSM (export lag), which is not
        # the corruption the catalog detector is there to catch
        mon = SiteHealthMonitor(env, system, config=_DETECTORS)
        service.attach_health(mon.view, degraded=_degraded(), seed=seed)

        # -- arm the regime (fault leg only) ---------------------------
        injector = None
        if fault:
            injector = system.inject_faults(
                spec.arm(FaultPlan(seed), list(system.loadmanager.nodes)),
                health=mon.view,
            )

        # -- phase B: the seeded feed across the regime window ---------
        arr_rng = RandomStreams(seed).stream(f"{spec.name}-arrivals")
        schedule = []
        t = 0.0
        for k in range(spec.n_jobs):
            t += float(arr_rng.exponential(spec.mean_arrival))
            op = spec.op_of(k)
            tenant = _TENANTS[k % len(_TENANTS)][0]
            if op == "archive":
                src, dst = f"/jobs/j{k:03d}", f"/arc/jobs/j{k:03d}"
                preload_tree(system.scratch_fs, src, _sizes(size_rng, 3))
            else:
                src = f"/arc/cold/t{k % spec.n_cold}"
                dst = f"/back/r{k:03d}"
            schedule.append((t, op, src, dst, tenant))

        phase_b: list = []

        def feeder():
            t_prev = 0.0
            for at, op, src, dst, tenant in schedule:
                yield env.timeout(at - t_prev)
                t_prev = at
                phase_b.append(service.submit(tenant, op, src, dst))

        fed = env.process(feeder(), name=f"{spec.name}-feeder")

        rec = None
        if spec.reconcile_at is not None:

            def reconcile():
                yield env.timeout(spec.reconcile_at)
                yield system.exporter.run_once()

            rec = env.process(reconcile(), name=f"{spec.name}-reconcile")

        env.run(fed)  # drain() can fire between arrivals: feed first
        if rec is not None:
            env.run(rec)
        env.run(service.drain())
        # settle guard: let the regime windows close and the detectors
        # re-probe recovered components before the health snapshot
        env.run(until=env.now + 60.0)
        health_end = mon.view.snapshot()  # before stop(): phi drifts after
        comps = {n: mon.view.component(n) for n in mon.view.components}
        saw_down = {
            name for name, comp in comps.items()
            if any(state == "down" for _, state in comp.history)
        }
        breakers = {
            name: list(comp.breaker.transitions)
            for name, comp in comps.items()
            if comp.breaker is not None
        }
        mon.stop()
        env.run()

        digests = _canonical_digests(
            system,
            want_back=any(op == "retrieve" for _, op, _, _, _ in schedule),
        )

        w_lo, w_hi = (t0 + spec.window[0], t0 + spec.window[1])
        goodput = sum(
            1 for tk in phase_b
            if tk.op == "archive" and tk.state == COMPLETED
            and w_lo <= tk.finished < w_hi
        )
        return {
            "env": env, "system": system, "service": service,
            "monitor": mon, "injector": injector, "tracer": tracer,
            "summary": service.summary(),
            "degraded": service.degraded_summary(),
            "tickets": list(service._tickets.values()),
            "digests": digests, "saw_down": saw_down,
            "breakers": breakers, "health_end": health_end,
            "goodput_in_window": goodput, "t0": t0,
        }


def _gate(cond: bool, what: str, detail: str = "") -> None:
    if not cond:
        raise AssertionError(
            f"drill gate failed: {what}" + (f" ({detail})" if detail else "")
        )


def _check_leg(spec: DrillSpec, leg: dict, fault: bool) -> None:
    """The per-leg invariants every drill must satisfy."""
    s = leg["summary"]
    which = "fault" if fault else "oracle"
    terminal = s["completed"] + s["cancelled"] + s["preempted"]
    _gate(s["submitted"] == terminal,
          f"{which} conservation",
          f"submitted {s['submitted']} != terminal {terminal}")
    _gate(s["cancelled"] == 0, f"{which} accepted-then-lost",
          f"{s['cancelled']} accepted jobs cancelled")
    _gate(s["queued"] == 0 and s["active"] == 0, f"{which} drained",
          f"queued={s['queued']} active={s['active']}")
    stuck = [t.job_id for t in leg["tickets"]
             if t.state not in TERMINAL_STATES]
    _gate(not stuck, f"{which} non-terminal tickets", str(stuck))
    # every health-plane preemption chained into a resume that finished
    requeued = [t for t in leg["tickets"]
                if t.state == PREEMPTED and t.health_requeued]
    resumed_of = {t.resume_of for t in leg["tickets"]
                  if t.resume_of is not None}
    lost = [t.job_id for t in requeued if t.job_id not in resumed_of]
    _gate(not lost, f"{which} preempted-but-never-resumed", str(lost))
    _gate(leg["service"].system.loadmanager.total_load == 0,
          f"{which} load released",
          repr(leg["service"].system.loadmanager))
    for name, transitions in leg["breakers"].items():
        edges = [(frm, to) for _, frm, to in transitions]
        bad = [e for e in edges if e not in _LEGAL_EDGES]
        _gate(not bad, f"{which} breaker {name} illegal edge", str(bad))


def run_drill(spec: DrillSpec, seed: Optional[int] = None) -> dict:
    """Run fault + oracle legs of *spec*, gate them, return the bundle.

    Every seed gets the hard invariants: conservation, full drain,
    preempt→resume chains, legal breaker edges, oracle convergence and
    clean recovery.  The seed-*tuned* expectations — goodput floor,
    which reasons parked work, how many fault effects actually fired —
    only hold on the golden seed (``REPRO_D_SEED`` unset), so seed
    sweeps exercise new arrival/fault interleavings without tripping
    gates calibrated to one trajectory.
    """
    seed = (spec.seed if seed is None else seed) + D_SEED
    golden_seed = D_SEED == 0 and seed == spec.seed
    fault = _run_once(spec, seed, fault=True)
    oracle = _run_once(spec, seed, fault=False)

    _check_leg(spec, fault, fault=True)
    _check_leg(spec, oracle, fault=False)

    # the oracle must be a genuinely calm run...
    _gate(oracle["degraded"]["brownouts"] == 0, "oracle brownout",
          str(oracle["degraded"]))
    _gate(oracle["degraded"]["health_requeues"] == 0, "oracle requeues")
    _gate(not oracle["saw_down"], "oracle saw components down",
          str(sorted(oracle["saw_down"])))
    # ...and the fault run must converge to its exact end state
    _gate(fault["digests"] == oracle["digests"],
          "end state differs from oracle",
          f"roots {sorted(fault['digests'])}")
    # the regime actually happened: armed windows are trace-stamped
    # deterministically even when no data op crossed a fault window
    ta = TraceAssertions(fault["tracer"])
    regimes = ta.select("fault:regime", ph="i")
    _gate(any(ev["args"]["phase"] == "begin" for ev in regimes),
          "no fault regime ran", f"{len(regimes)} regime stamps")
    inj = fault["injector"]
    if golden_seed:
        _gate(inj is not None and sum(inj.injected.values()) > 0,
              "no faults injected", repr(inj.injected if inj else None))
    missing = [c for c in spec.must_fence if c not in fault["saw_down"]]
    _gate(not missing, "component never went down",
          f"missing {missing}; saw {sorted(fault['saw_down'])}")
    if spec.must_park and golden_seed:
        parked = {
            ev["args"]["reason"]
            for ev in ta.select("sched:blocked", ph="i")
        }
        unparked = [r for r in spec.must_park if r not in parked]
        _gate(not unparked, "work never parked on fenced reason",
              f"missing {unparked}; saw {sorted(parked)}")
    # every fence healed: nothing is down or fenced at the end
    _gate(not fault["degraded"]["fenced"], "nodes still fenced",
          str(fault["degraded"]["fenced"]))
    still_down = sorted(
        n for n, st in fault["health_end"].items() if st == "down"
    )
    _gate(not still_down, "components still down", str(still_down))
    floor = spec.goodput_floor if golden_seed else 0
    _gate(fault["goodput_in_window"] >= floor,
          "goodput floor",
          f"{fault['goodput_in_window']} < {floor} archives "
          f"completed inside the regime window")
    if spec.reconcile_at is not None:
        bad = verify_catalog(fault["system"].tapedb, fault["system"].tsm)
        _gate(bad == 0, "catalog not reconciled", f"{bad} bad rows")
    return {"fault": fault, "oracle": oracle, "seed": seed}


def _outcome(spec: DrillSpec) -> ScenarioOutcome:
    res = run_drill(spec)
    fault = res["fault"]
    s, d = fault["summary"], fault["degraded"]
    inj = fault["injector"]
    headline = {
        "submitted": s["submitted"],
        "completed": s["completed"],
        "preempted": s["preempted"],
        "resumed": s["resumed"],
        "health_requeues": d["health_requeues"],
        "brownouts": d["brownouts"],
        "brownout_time": round(d["brownout_time"], 9),
        "goodput_in_window": fault["goodput_in_window"],
        "delayed_messages": inj.delayed_messages,
        "injected_total": sum(inj.injected.values()),
        "end_time": round(fault["env"].now, 9),
        "digest_crc": _digest_crc(fault["digests"]),
    }
    return ScenarioOutcome(
        env=fault["env"], headline=headline,
        notes=(
            f"seed {res['seed']}; fenced components "
            f"{sorted(fault['saw_down'])}; injected {dict(inj.injected)}"
        ),
    )


# ---------------------------------------------------------------------------
# the three drills
# ---------------------------------------------------------------------------

def _d1_arm(plan: FaultPlan, nodes: list) -> FaultPlan:
    return plan.library_outage(start=12.0, duration=40.0)


def _d2_arm(plan: FaultPlan, nodes: list) -> FaultPlan:
    return plan.pool_loss(nodes[: len(nodes) // 2], start=15.0,
                          duration=35.0, stagger=4.0)


def _d3_arm(plan: FaultPlan, nodes: list) -> FaultPlan:
    return plan.catalog_corruption(at=10.0, rows=3, drop=1)


D1 = DrillSpec(
    name="d1", seed=7101, n_cold=4, n_jobs=10, mean_arrival=6.0,
    op_of=lambda k: "retrieve" if k % 2 else "archive",
    arm=_d1_arm, migrate=True, window=(12.0, 52.0), goodput_floor=2,
    must_fence=("library",), must_park=("library-fenced",),
)

D2 = DrillSpec(
    name="d2", seed=7202, n_cold=2, n_jobs=12, mean_arrival=5.0,
    op_of=lambda k: "archive",
    arm=_d2_arm, migrate=False, window=(15.0, 50.0), goodput_floor=1,
)

D3 = DrillSpec(
    name="d3", seed=7303, n_cold=4, n_jobs=8, mean_arrival=5.0,
    op_of=lambda k: "retrieve" if k % 2 else "archive",
    arm=_d3_arm, migrate=True, window=(10.0, 45.0), goodput_floor=1,
    reconcile_at=35.0, must_fence=("catalog",),
    must_park=("catalog-fenced",),
)

DRILLS = {"d1_library_outage": D1, "d2_fta_pool_loss": D2,
          "d3_catalog_corruption": D3}


@scenario("d1_library_outage")
def d1_library_outage() -> ScenarioOutcome:
    """D1: whole-library outage — retrieves park, archives flow."""
    return _outcome(D1)


@scenario("d2_fta_pool_loss")
def d2_fta_pool_loss() -> ScenarioOutcome:
    """D2: staggered FTA pool loss — fence, drain, brownout, readmit."""
    return _outcome(D2)


@scenario("d3_catalog_corruption")
def d3_catalog_corruption() -> ScenarioOutcome:
    """D3: tape-index corruption — park retrieves, reconcile, heal."""
    return _outcome(D3)
