"""M* metadata-plane scenarios: the tape index at archive scale.

The paper's site archives ~10^8 files; §4.2.1 measures the GPFS inode
scan at 10^6 inodes / 10 minutes and §4.1.2's tape-ordered restores
depend on a DB2 query over the whole TSM object catalog.  These
scenarios put the reproduced metadata plane (``repro.tapedb``) under
that population pressure:

* ``m1_index_scan`` — bulk-seed a sharded index and stream the entire
  catalog in global ``(volume, seq)`` recall order through the k-way
  merge, proving the scan is bounded-memory (peak live entries is a
  *headline*, not a hope) and measuring files/sec;
* ``m2_recall_sort`` — a PFTool-style locate storm through the LRU hot
  cache (hot working set + cold scatter), then the full streaming
  recall sort; headlines include the deterministic cache hit/miss split
  and the merge's peak live-entry count;
* ``m3_reconcile`` — the §4.4 failure-domain chore at scale: stream the
  index against a deterministic "deleted upstream" predicate, collect
  orphans, then purge them.

Populations default to 10^5 (CI perf-smoke tier) and scale through
``REPRO_M_POP`` — the metadata-smoke CI job runs 10^6; EXPERIMENTS.md
extrapolates the measured files/sec to the paper's 10^7-10^8.  All
*headline* values (counts, CRC-32 order checksums, simulated end times)
are machine-independent and population-keyed goldens; wall-clock
files/sec rides in ``extra``.
"""

from __future__ import annotations

import os
import time
import zlib
from typing import Iterator

from repro.perf import ScenarioOutcome, scenario
from repro.sim import Environment, SimulationError
from repro.tapedb import BufferGauge, ShardedTapeIndex, VolumeRangeRouter

__all__ = ["m1_index_scan", "m2_recall_sort", "m3_reconcile", "synth_rows"]

#: population tier — perf-smoke runs the default; metadata-smoke sets 10^6
M_POP = int(os.environ.get("REPRO_M_POP", "100000"))
#: shard count for the M* family (paper-site scale-out, not the default 4)
M_SHARDS = 8
#: cursor batch: peak live entries per scan is bounded by M_SHARDS * M_BATCH
M_BATCH = 512
#: objects per tape volume (LTO-4 at ~1 GB objects is O(10^3)/cartridge)
FILES_PER_VOLUME = 2000

#: simulated catalog streaming rate, rows/s — the paper's DB2 SELECT over
#: the backup-objects table sustains O(10^5) rows/s once the plan is an
#: index-ordered scan; charged per cursor batch
CATALOG_SCAN_RATE = 250_000.0
#: simulated per-orphan DELETE cost (row + two index entries)
DELETE_COST = 40e-6


def _mix64(x: int) -> int:
    """splitmix64 finaliser — deterministic scatter without an RNG."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def n_volumes(pop: int) -> int:
    return max(1, (pop + FILES_PER_VOLUME - 1) // FILES_PER_VOLUME)


def synth_path(i: int) -> str:
    return f"/m/d{i >> 10:05d}/f{i:08d}"


def synth_rows(pop: int, seed: int) -> Iterator[dict]:
    """Deterministic bulk-load rows: *pop* files scattered over volumes.

    Each file lands on a mixed-hash volume with a per-volume increasing
    ``seq`` — the insertion pattern a migrator produces (per-volume
    append order) but interleaved across volumes, so the global recall
    sort has real merging to do.  Pure arithmetic hashing: no RNG state,
    identical on every platform.
    """
    vols = n_volumes(pop)
    next_seq = [0] * vols
    for i in range(pop):
        v = _mix64(seed ^ (i * 0x2545F4914F6CDD1D)) % vols
        next_seq[v] += 1
        yield {
            "object_id": i + 1,
            "path": synth_path(i),
            "filespace": "archive",
            "volume": f"VOL{v:06d}",
            "seq": next_seq[v],
            "nbytes": 1024 + (_mix64(i) & 0xFFFFF),
        }


def _build_index(env: Environment, pop: int, seed: int) -> ShardedTapeIndex:
    vols = n_volumes(pop)
    shards = min(M_SHARDS, vols)  # tiny tiers: no empty range shards
    db = ShardedTapeIndex(
        env,
        n_shards=shards,
        router=VolumeRangeRouter.for_numbered(vols, shards),
        cache_entries=4096,
    )
    db.bulk_load(synth_rows(pop, seed))
    return db


def _stream_all(env: Environment, db: ShardedTapeIndex, gauge: BufferGauge):
    """Process: stream the full recall order, charging catalog time.

    Returns (count, crc) through a one-element list closure is avoided —
    the caller reads the mutated ``stats`` dict after ``env.run()``.
    """
    stats = {"count": 0, "crc": 0}

    def _proc():
        crc = 0
        pending = 0
        for loc in db.iter_recall_order(batch=M_BATCH, gauge=gauge):
            crc = zlib.crc32(
                f"{loc.volume}|{loc.seq}|{loc.object_id}".encode(), crc
            )
            stats["count"] += 1
            pending += 1
            if pending == M_BATCH:
                yield env.timeout(pending / CATALOG_SCAN_RATE)
                pending = 0
        if pending:
            yield env.timeout(pending / CATALOG_SCAN_RATE)
        stats["crc"] = crc

    env.process(_proc(), name="catalog-scan")
    return stats


def _check_bounded(gauge: BufferGauge, pop: int) -> None:
    """The bounded-memory claim, asserted in the bench itself."""
    bound = M_SHARDS * M_BATCH
    if gauge.peak > bound:
        raise SimulationError(
            f"streaming merge held {gauge.peak} live entries > "
            f"{M_SHARDS} shards x {M_BATCH} batch = {bound}"
        )
    if pop >= 10 * bound and gauge.peak >= 0.10 * pop:
        raise SimulationError(
            f"peak live entries {gauge.peak} >= 10% of population {pop}"
        )


@scenario("m1_index_scan")
def m1_index_scan(pop: int = 0) -> ScenarioOutcome:
    """Bulk-seed the sharded index, stream the full recall order."""
    pop = pop or M_POP
    env = Environment()
    t0 = time.perf_counter()  # noqa: RA001 - benchmark measures wall clock
    db = _build_index(env, pop, seed=90210)
    t_build = time.perf_counter() - t0  # noqa: RA001 - benchmark wall clock
    gauge = BufferGauge()
    stats = _stream_all(env, db, gauge)
    t1 = time.perf_counter()  # noqa: RA001 - benchmark measures wall clock
    env.run()
    t_scan = time.perf_counter() - t1  # noqa: RA001 - benchmark wall clock
    _check_bounded(gauge, pop)
    if stats["count"] != len(db):
        raise SimulationError(
            f"scan yielded {stats['count']} of {len(db)} rows"
        )
    sizes = db.shard_sizes()
    db.publish_metrics()
    return ScenarioOutcome(
        env=env,
        headline={
            "files": float(pop),
            "volumes": float(n_volumes(pop)),
            "order_crc": float(stats["crc"]),
            "peak_live": float(gauge.peak),
            "shard_max": float(max(sizes)),
            "shard_min": float(min(sizes)),
            "end_time": round(env.now, 9),
        },
        notes=f"{M_SHARDS} shards, batch {M_BATCH}",
        extras={
            "build_files_per_s": int(pop / t_build) if t_build > 0 else 0,
            "scan_files_per_s": int(pop / t_scan) if t_scan > 0 else 0,
            "shard_balance": round(db.shard_balance(), 6),
        },
    )


@scenario("m2_recall_sort")
def m2_recall_sort(pop: int = 0) -> ScenarioOutcome:
    """Locate storm through the LRU cache, then the streaming recall sort."""
    pop = pop or M_POP
    env = Environment()
    db = _build_index(env, pop, seed=4561)
    # A PFTool restore job's lookup mix: a hot working set (metadata for
    # the directories being walked, smaller than the cache) revisited
    # across batches, plus a cold scatter over the whole population.
    hot = min(1024, pop)
    n_batches, per_batch = 64, 256
    lookups = {"hits": 0}

    def _pick(b: int, j: int) -> str:
        h = _mix64((b * per_batch + j) ^ 0xD1B54A32D192ED03)
        if h & 3:  # 3 of 4 lookups stay in the hot set
            return synth_path(h % hot)
        return synth_path(h % pop)

    def _storm():
        for b in range(n_batches):
            paths = [_pick(b, j) for j in range(per_batch)]
            got = yield db.locate_many("archive", paths)
            lookups["hits"] += sum(1 for v in got.values() if v is not None)

    env.process(_storm(), name="locate-storm")
    env.run()
    cache_hits, cache_misses = db.cache.hits, db.cache.misses
    gauge = BufferGauge()
    stats = _stream_all(env, db, gauge)
    t0 = time.perf_counter()  # noqa: RA001 - benchmark measures wall clock
    env.run()
    t_scan = time.perf_counter() - t0  # noqa: RA001 - benchmark wall clock
    _check_bounded(gauge, pop)
    db.publish_metrics()
    return ScenarioOutcome(
        env=env,
        headline={
            "files": float(pop),
            "lookups": float(n_batches * per_batch),
            "found": float(lookups["hits"]),
            "cache_hits": float(cache_hits),
            "cache_misses": float(cache_misses),
            "peak_live": float(gauge.peak),
            "order_crc": float(stats["crc"]),
            "end_time": round(env.now, 9),
        },
        notes=f"hot set {hot}, cache 4096",
        extras={
            "sort_files_per_s": int(pop / t_scan) if t_scan > 0 else 0,
            "cache_hit_rate": round(db.cache.hit_rate, 6),
        },
    )


@scenario("m3_reconcile")
def m3_reconcile(pop: int = 0) -> ScenarioOutcome:
    """Stream the catalog against a deletion predicate, purge orphans."""
    pop = pop or M_POP
    env = Environment()
    db = _build_index(env, pop, seed=7788)

    def _deleted(i: int) -> bool:
        # ~3% of files were deleted upstream (GPFS side) — pure function
        # of the file index, so the orphan set is machine-independent.
        return _mix64(i ^ 0xA0761D6478BD642F) % 1000 < 30

    result = {"orphans": 0, "crc": 0, "scanned": 0}

    def _proc():
        orphan_ids = []
        crc = 0
        pending = 0
        # Collect during the stream, mutate after: Table.iter_index is
        # a positional cursor, not a snapshot.
        for loc in db.iter_recall_order(batch=M_BATCH):
            result["scanned"] += 1
            pending += 1
            if _deleted(loc.object_id - 1):
                orphan_ids.append(loc.object_id)
                crc = zlib.crc32(str(loc.object_id).encode(), crc)
            if pending == M_BATCH:
                yield env.timeout(pending / CATALOG_SCAN_RATE)
                pending = 0
        if pending:
            yield env.timeout(pending / CATALOG_SCAN_RATE)
        yield env.timeout(len(orphan_ids) * DELETE_COST)
        for oid in orphan_ids:
            db.remove(oid)
        result["orphans"] = len(orphan_ids)
        result["crc"] = crc

    env.process(_proc(), name="reconcile")
    t0 = time.perf_counter()  # noqa: RA001 - benchmark measures wall clock
    env.run()
    wall = time.perf_counter() - t0  # noqa: RA001 - benchmark wall clock
    if result["scanned"] != pop:
        raise SimulationError(
            f"reconcile scanned {result['scanned']} of {pop} rows"
        )
    db.publish_metrics()
    return ScenarioOutcome(
        env=env,
        headline={
            "files": float(pop),
            "orphans": float(result["orphans"]),
            "orphan_crc": float(result["crc"]),
            "remaining": float(len(db)),
            "end_time": round(env.now, 9),
        },
        extras={
            "reconcile_files_per_s": int(pop / wall) if wall > 0 else 0,
        },
    )
