"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.trace`: where the tracer
records *events* (spans, instants), the registry holds *aggregates*.  It
is deliberately tiny and allocation-light so :class:`repro.pftool.stats.
JobStats` can be backed by one without measurable cost, and so a tracer
can carry one per run and snapshot it into the exported trace.

Determinism contract: snapshots iterate instruments in registration
order and histograms use fixed bucket boundaries, so two identical runs
serialize to identical bytes.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically *usable* (but resettable) numeric counter.

    ``inc`` is the normal path; ``set`` exists so registry-backed stats
    objects can keep supporting ``stats.field += n`` read-modify-write
    through a property.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1):
        self.value += amount
        return self

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


#: default histogram buckets: powers of ten from 1 to 1e15 — wide enough
#: for byte sizes (the dominant use) and for second-scale durations
_DEFAULT_BUCKETS = tuple(float(10**e) for e in range(16))


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds (values above the last bound land in a
    final overflow bucket), mirroring the Prometheus convention minus
    the cumulative encoding.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets)) if buckets else _DEFAULT_BUCKETS
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # linear scan: bucket lists are short and this is not a hot path
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                repr(b): c
                for b, c in zip(self.buckets, self.counts)
                if c
            },
            "overflow": self.counts[-1],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} sum={self.sum}>"


class MetricsRegistry:
    """Named instruments, created on first use.

    A name belongs to exactly one instrument kind; asking for the same
    name as a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: Optional[Iterable[float]] = None) -> Histogram:
        if buckets is not None:
            return self._get(name, Histogram, buckets)
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """{name: value-or-dict} in registration order."""
        return {
            name: inst.snapshot() for name, inst in self._instruments.items()
        }
