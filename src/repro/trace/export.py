"""Trace exporters: JSONL stream and Chrome ``trace_event`` JSON.

Both formats are deterministic: keys sorted, compact separators, floats
via :func:`repr`-faithful ``json.dumps``.  Two runs with the same seed
therefore produce byte-identical files, which the trace CLI tests rely
on.

* **JSONL** — one JSON object per line: a ``meta`` header, each event in
  recorded order, then a ``metrics`` snapshot trailer.  Greppable and
  stream-parsable; the canonical format for tooling.
* **Chrome trace_event** — the "JSON Array Format" understood by
  ``chrome://tracing`` and Perfetto.  Timestamps/durations convert from
  simulated seconds to integer microseconds; ``pid`` is fixed at 1 (one
  simulated world) and ``tid`` is the component name (drive, rank, ...).
"""

from __future__ import annotations

import json
from typing import IO

__all__ = ["chrome_events", "write_chrome", "write_jsonl"]


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_jsonl(tracer, fh: IO[str]) -> None:
    """Write the tracer's events as a JSONL stream."""
    tracer.finalize()
    fh.write(_dumps({"meta": tracer.metadata, "schema": 1}) + "\n")
    for ev in tracer.events:
        fh.write(_dumps(ev) + "\n")
    fh.write(_dumps({"metrics": tracer.metrics.snapshot()}) + "\n")


def _us(seconds: float) -> int:
    # round-half-even at 1 µs granularity; simulated times are exact
    # enough that collisions don't matter for visualization
    return int(round(seconds * 1_000_000))


def chrome_events(tracer) -> list[dict]:
    """Tracer events converted to Chrome trace_event dicts (µs clock)."""
    out = []
    for ev in tracer.events:
        ch: dict = {
            "ph": ev["ph"],
            "name": ev["name"],
            "ts": _us(ev["ts"]),
            "pid": 1,
            "tid": ev.get("tid", "") or "main",
        }
        if ev["ph"] == "X":
            ch["dur"] = _us(ev["dur"])
        if ev["ph"] == "i":
            ch["s"] = "t"  # thread-scoped instant
        if "cat" in ev:
            ch["cat"] = ev["cat"]
        if "args" in ev:
            ch["args"] = ev["args"]
        out.append(ch)
    return out


def write_chrome(tracer, fh: IO[str]) -> None:
    """Write the tracer as a Chrome trace_event "JSON Array Format" file."""
    tracer.finalize()
    doc = {
        "traceEvents": chrome_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": dict(tracer.metadata, metrics=tracer.metrics.snapshot()),
    }
    fh.write(_dumps(doc) + "\n")
