"""Trace a seeded scenario: ``python -m repro.trace``.

Runs one of the :mod:`repro.perf` scenarios under an installed tracer
and writes the event stream as both JSONL and Chrome ``trace_event``
JSON (load the latter in ``chrome://tracing`` or https://ui.perfetto.dev).

Examples
--------
::

    python -m repro.trace --scenario fig10_proxy --seed 3
    python -m repro.trace --scenario fabric_churn --seed 1 --out /tmp/t
    python -m repro.trace --list

Output is deterministic: repeating a run with the same scenario and
seed produces byte-identical files (wall-clock metadata is opt-in via
``--wall``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Optional, Sequence

from repro.trace import Tracer, tracing
from repro.trace.export import write_chrome, write_jsonl


def run_traced_scenario(name: str, seed: Optional[int] = None,
                        wall: bool = False) -> Tracer:
    """Run perf scenario *name* under a fresh tracer; return the tracer.

    Scenarios whose function accepts a ``seed`` parameter get it passed
    through; for the rest ``--seed`` only labels the metadata (their
    seeding is baked in).
    """
    from repro.perf import SCENARIOS, _ensure_scenarios_loaded

    _ensure_scenarios_loaded()
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r} (have: {', '.join(SCENARIOS)})"
        )
    fn = SCENARIOS[name]
    kwargs = {}
    if seed is not None and "seed" in inspect.signature(fn).parameters:
        kwargs["seed"] = seed

    tracer = Tracer(metadata={"scenario": name, "seed": seed})
    t0 = time.perf_counter()  # noqa: RA001 - CLI reports wall clock
    with tracing(tracer):
        out = fn(**kwargs)
    wall_s = time.perf_counter() - t0  # noqa: RA001 - CLI reports wall clock
    tracer.metadata["headline"] = out.headline
    tracer.metadata["sim_end_time"] = out.env.now
    tracer.metadata["events_processed"] = out.env.events_processed
    if wall:
        tracer.metadata["wall_s"] = round(wall_s, 4)
    tracer.finalize()
    return tracer


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Run a seeded repro.perf scenario with tracing on and "
        "emit JSONL + Chrome trace_event files.",
    )
    parser.add_argument(
        "--scenario", metavar="NAME", default=None,
        help="scenario to trace (see --list)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="scenario seed (passed to scenarios that accept one; default 0)",
    )
    parser.add_argument(
        "--out", metavar="BASE", default=None,
        help="output basename; writes BASE.jsonl and BASE.trace.json "
        "(default trace_<scenario>_s<seed>)",
    )
    parser.add_argument(
        "--wall", action="store_true",
        help="include wall-clock timing in trace metadata "
        "(breaks byte-identical repeatability)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list traceable scenarios and exit"
    )
    args = parser.parse_args(argv)

    from repro.perf import SCENARIOS, _ensure_scenarios_loaded

    _ensure_scenarios_loaded()
    if args.list:
        for name, fn in SCENARIOS.items():
            seeded = "seed" in inspect.signature(fn).parameters
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            mark = "*" if seeded else " "
            print(f"{mark} {name:<16} {doc}")
        print("\n(* = honours --seed)")
        return 0

    if not args.scenario:
        parser.error("--scenario is required (or use --list)")

    try:
        tracer = run_traced_scenario(args.scenario, seed=args.seed,
                                     wall=args.wall)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    base = args.out or f"trace_{args.scenario}_s{args.seed}"
    jsonl_path = f"{base}.jsonl"
    chrome_path = f"{base}.trace.json"
    with open(jsonl_path, "w", encoding="utf-8") as fh:
        write_jsonl(tracer, fh)
    with open(chrome_path, "w", encoding="utf-8") as fh:
        write_chrome(tracer, fh)

    n_spans = sum(1 for ev in tracer.events if ev["ph"] == "X")
    n_instants = sum(1 for ev in tracer.events if ev["ph"] == "i")
    print(
        f"{args.scenario} (seed {args.seed}): {len(tracer.events)} events "
        f"({n_spans} spans, {n_instants} instants), "
        f"{len(tracer.metrics)} metrics, sim end t="
        f"{tracer.metadata['sim_end_time']:.6f}"
    )
    print(f"wrote {jsonl_path}")
    print(f"wrote {chrome_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
