"""Structured tracing for the simulated archive stack.

``repro.trace`` is the run-wide observability layer the paper's
production system had implicitly (operators watching PFTool phases, TSM
mount activity, migration queues) and our reproduction lacked: every
interesting component action — a chunk copy, a drive mount, a tape
recall — can emit a *span* or *instant event* keyed on **simulated
time**, plus update shared metrics (see :mod:`repro.trace.metrics`).

Design constraints, in order:

1. **Disabled is free.**  Tracing is off by default.  Call sites hold a
   channel object and guard with ``if tr.enabled:``; when no tracer is
   installed they get the shared :data:`NULL_CHANNEL` whose ``enabled``
   is a *class attribute* ``False`` — the guard is one attribute load,
   no allocation, no branching inside the engine hot loops.
2. **Deterministic.**  Events are timestamped with ``env.now`` and
   appended in execution order.  Two runs with the same seed produce
   byte-identical exports (wall-clock is opt-in metadata only).
3. **Zero dependencies.**  Pure stdlib; exporters live in
   :mod:`repro.trace.export`, test helpers in
   :mod:`repro.trace.assertions`.

Usage::

    tracer = Tracer()
    with tracing(tracer):
        env = Environment()          # env.trace is now a live channel
        ... run simulation ...
    tracer.finalize()
    write_chrome(tracer, fh)

Component code never imports the tracer directly — it uses
``env.trace``:

    tr = env.trace
    if tr.enabled:
        span = tr.begin("drive:read", tid=self.name, args={"oid": oid})
    ...
    if tr.enabled:
        span.end()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.trace.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "NULL_CHANNEL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceChannel",
    "Tracer",
    "channel_for",
    "install",
    "tracing",
    "uninstall",
]


class Span:
    """An open interval; ``end()`` records it as a Chrome "X" event.

    Spans are cheap mutable records, usable as context managers.  A span
    left open when the tracer is finalized is closed at the tracer's
    final timestamp (so aborted scenarios still export valid traces).
    """

    __slots__ = ("_tracer", "name", "cat", "tid", "args", "t0", "_done")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: str,
                 args: Optional[dict], t0: float) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args
        self.t0 = t0
        self._done = False

    def end(self, t1: Optional[float] = None, **extra) -> None:
        if self._done:
            return
        self._done = True
        tracer = self._tracer
        if t1 is None:
            t1 = tracer.now()
        if extra:
            args = dict(self.args) if self.args else {}
            args.update(extra)
        else:
            args = self.args
        ev = {"ph": "X", "name": self.name, "ts": self.t0, "dur": t1 - self.t0}
        if self.cat:
            ev["cat"] = self.cat
        if self.tid:
            ev["tid"] = self.tid
        if args:
            ev["args"] = args
        tracer.events.append(ev)
        tracer._open.discard(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class TraceChannel:
    """A tracer bound to one simulation environment.

    All timestamps come from ``env.now``; multiple environments tracing
    into one tracer would interleave clocks, so a channel pins the pair.
    """

    __slots__ = ("_tracer", "_env")

    #: hot-path guard; the null channel overrides this with False
    enabled = True

    def __init__(self, tracer: "Tracer", env) -> None:
        self._tracer = tracer
        self._env = env
        tracer._env = env

    def begin(self, name: str, tid: str = "", cat: str = "",
              args: Optional[dict] = None) -> Span:
        """Open a span at the current simulated time."""
        tracer = self._tracer
        span = Span(tracer, name, cat, tid, args, self._env.now)
        tracer._open.add(span)
        return span

    def instant(self, name: str, tid: str = "", cat: str = "",
                args: Optional[dict] = None) -> None:
        """Record a point event ("i" phase)."""
        ev = {"ph": "i", "name": name, "ts": self._env.now}
        if cat:
            ev["cat"] = cat
        if tid:
            ev["tid"] = tid
        if args:
            ev["args"] = args
        self._tracer.events.append(ev)

    def counter(self, name: str, value, tid: str = "") -> None:
        """Record a counter sample ("C" phase) at the current time."""
        ev = {"ph": "C", "name": name, "ts": self._env.now,
              "args": {name: value}}
        if tid:
            ev["tid"] = tid
        self._tracer.events.append(ev)

    @property
    def metrics(self) -> MetricsRegistry:
        """The tracer's shared metrics registry."""
        return self._tracer.metrics


class _NullSpan:
    """Inert span handed out by the null channel; every method no-ops."""

    __slots__ = ()

    t0 = 0.0
    name = cat = tid = ""
    args = None

    def end(self, t1=None, **extra) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullChannel:
    """Shared do-nothing channel used when tracing is off.

    Call sites guard with ``if tr.enabled:`` so these methods are rarely
    reached, but they are safe to call unguarded.
    """

    __slots__ = ()

    enabled = False

    def begin(self, name: str, tid: str = "", cat: str = "",
              args: Optional[dict] = None) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, tid: str = "", cat: str = "",
                args: Optional[dict] = None) -> None:
        pass

    def counter(self, name: str, value, tid: str = "") -> None:
        pass

    @property
    def metrics(self) -> MetricsRegistry:
        # shared sink; call sites guard on .enabled so this is rarely hit
        return _NULL_METRICS


_NULL_SPAN = _NullSpan()
_NULL_METRICS = MetricsRegistry()

#: the channel every Environment gets when no tracer is installed
NULL_CHANNEL = _NullChannel()


class Tracer:
    """Collects events and metrics for one traced run.

    ``events`` is an append-only list of Chrome-style event dicts with
    ``ts``/``dur`` in simulated **seconds** (exporters convert to µs).
    ``metrics`` is a :class:`MetricsRegistry` snapshot-able into the
    export.  ``metadata`` rides along into both exporters.
    """

    def __init__(self, metadata: Optional[dict] = None) -> None:
        self.events: list[dict] = []
        self.metrics = MetricsRegistry()
        self.metadata: dict = dict(metadata or {})
        self._open: set[Span] = set()
        self._env = None
        self._finalized = False

    def now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    def channel(self, env) -> TraceChannel:
        return TraceChannel(self, env)

    def finalize(self) -> None:
        """Close dangling spans at the final timestamp.  Idempotent."""
        if self._finalized:
            return
        self._finalized = True
        if self._open:
            end = self.now()
            # deterministic close order: by open time, then name/tid
            for span in sorted(self._open, key=lambda s: (s.t0, s.name, s.tid)):
                span.end(max(end, span.t0), unfinished=True)
        self._open.clear()


#: process-wide active tracer; Environments constructed while one is
#: installed bind a live channel, others get NULL_CHANNEL
_ACTIVE_TRACER: Optional[Tracer] = None


def install(tracer: Tracer) -> None:
    """Make *tracer* the active tracer for new Environments."""
    global _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer


def uninstall() -> None:
    global _ACTIVE_TRACER
    _ACTIVE_TRACER = None


def channel_for(env):
    """Channel for a new Environment: live if a tracer is installed."""
    if _ACTIVE_TRACER is None:
        return NULL_CHANNEL
    return _ACTIVE_TRACER.channel(env)


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """Install *tracer* (a fresh one if None) for the ``with`` body.

    Yields the tracer; restores the previously active tracer on exit so
    nested use (tests inside traced tests) behaves.
    """
    global _ACTIVE_TRACER
    if tracer is None:
        tracer = Tracer()
    prev = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER = prev
