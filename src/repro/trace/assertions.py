"""Trace-based test assertions.

Final-total assertions (``stats.files_copied == 8``) can pass while the
run did something causally wrong — recalled tapes out of order, mounted
one drive from two clients, left a hole in a chunked file.
:class:`TraceAssertions` lets integration tests assert on the *event
stream* instead: ordering, exclusivity, monotonicity, and coverage.

All helpers raise ``AssertionError`` with a message naming the
offending events, so pytest failures are directly actionable.

``per`` selectors: several helpers partition events into groups first.
``per="tid"`` groups by thread/component name; ``per="args:<key>"``
groups by an args field (e.g. ``per="args:volume"``).
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["TraceAssertions"]


def _group_key(per: Optional[str]) -> Callable[[dict], object]:
    if per is None:
        return lambda ev: None
    if per == "tid":
        return lambda ev: ev.get("tid", "")
    if per.startswith("args:"):
        key = per[5:]
        return lambda ev: ev.get("args", {}).get(key)
    raise ValueError(f"bad per selector {per!r} (want 'tid' or 'args:<key>')")


class TraceAssertions:
    """Queries and assertions over a finished :class:`~repro.trace.Tracer`.

    Construction finalizes the tracer (closing dangling spans) so event
    lists are complete and stable.
    """

    def __init__(self, tracer) -> None:
        tracer.finalize()
        self.tracer = tracer
        self.events = tracer.events

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------

    def select(self, name: str, ph: Optional[str] = None,
               tid: Optional[str] = None) -> list[dict]:
        """Events with *name*, optionally filtered by phase and tid."""
        return [
            ev for ev in self.events
            if ev["name"] == name
            and (ph is None or ev["ph"] == ph)
            and (tid is None or ev.get("tid", "") == tid)
        ]

    def spans(self, name: str, tid: Optional[str] = None) -> list[dict]:
        return self.select(name, ph="X", tid=tid)

    def span_count(self, name: str, expect: Optional[int] = None,
                   tid: Optional[str] = None) -> int:
        """Number of spans named *name*; asserts equality if *expect* given."""
        n = len(self.spans(name, tid=tid))
        if expect is not None:
            assert n == expect, (
                f"expected {expect} {name!r} spans, found {n}"
            )
        return n

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------

    def happens_before(self, first: str, then: str,
                       per: Optional[str] = None) -> None:
        """Every *first* span/event ends before any *then* one begins.

        With *per*, the relation is checked within each group only
        (e.g. per file: its store must precede its recall, but other
        files' stores may interleave).
        """
        key = _group_key(per)
        firsts: dict[object, float] = {}
        for ev in self.select(first):
            end = ev["ts"] + ev.get("dur", 0.0)
            k = key(ev)
            if k not in firsts or end > firsts[k]:
                firsts[k] = end
        assert firsts, f"no events named {first!r} in trace"
        thens = self.select(then)
        assert thens, f"no events named {then!r} in trace"
        for ev in thens:
            k = key(ev)
            if k not in firsts:
                continue
            assert ev["ts"] >= firsts[k], (
                f"{then!r} at t={ev['ts']} (group {k!r}) starts before the "
                f"last {first!r} ends at t={firsts[k]}"
            )

    def monotonic(self, name: str, field: str,
                  per: Optional[str] = None, strict: bool = False) -> None:
        """``args[field]`` is non-decreasing over event order (per group).

        The canonical use is tape-order monotonicity: recalls touching
        one volume must proceed in increasing sequence id —
        ``monotonic("tsm:recall", "seq", per="args:volume")``.
        """
        key = _group_key(per)
        events = self.select(name)
        assert events, f"no events named {name!r} in trace"
        last: dict[object, object] = {}
        for ev in events:
            val = ev.get("args", {}).get(field)
            assert val is not None, (
                f"{name!r} event at t={ev['ts']} has no args[{field!r}]"
            )
            k = key(ev)
            if k in last:
                prev = last[k]
                ok = prev < val if strict else prev <= val
                assert ok, (
                    f"{name!r} {field}={val!r} after {field}={prev!r} "
                    f"(group {k!r}) — order not monotonic"
                )
            last[k] = val

    # ------------------------------------------------------------------
    # exclusivity
    # ------------------------------------------------------------------

    def no_overlap(self, name: str, per: Optional[str] = "tid") -> None:
        """Spans named *name* never overlap in time (within each group).

        ``no_overlap("drive:mounted", per="tid")`` is single-writer
        drive-mount exclusivity: one drive is never mounted twice at
        once.  Back-to-back spans sharing an endpoint are allowed.
        """
        key = _group_key(per)
        groups: dict[object, list[dict]] = {}
        for ev in self.spans(name):
            groups.setdefault(key(ev), []).append(ev)
        assert groups, f"no spans named {name!r} in trace"
        for k, spans in groups.items():
            spans.sort(key=lambda ev: (ev["ts"], ev["ts"] + ev["dur"]))
            prev = None
            for ev in spans:
                if prev is not None:
                    prev_end = prev["ts"] + prev["dur"]
                    assert ev["ts"] >= prev_end, (
                        f"{name!r} spans overlap in group {k!r}: "
                        f"[{prev['ts']}, {prev_end}] and "
                        f"[{ev['ts']}, {ev['ts'] + ev['dur']}]"
                    )
                prev = ev

    # ------------------------------------------------------------------
    # coverage
    # ------------------------------------------------------------------

    def covers(self, name: str, total: int, per: Optional[str] = None,
               offset_field: str = "offset",
               length_field: str = "length") -> None:
        """Spans' ``[offset, offset+length)`` ranges tile ``[0, total)``.

        Asserts no gaps and no double-writes: the canonical check that
        an N-to-1 chunked copy reassembled the whole file exactly once.
        """
        key = _group_key(per)
        groups: dict[object, list[tuple[int, int]]] = {}
        for ev in self.spans(name):
            args = ev.get("args", {})
            off, ln = args.get(offset_field), args.get(length_field)
            assert off is not None and ln is not None, (
                f"{name!r} span at t={ev['ts']} lacks "
                f"{offset_field!r}/{length_field!r} args"
            )
            groups.setdefault(key(ev), []).append((off, ln))
        assert groups, f"no spans named {name!r} in trace"
        for k, ranges in groups.items():
            ranges.sort()
            pos = 0
            for off, ln in ranges:
                assert off == pos, (
                    f"{name!r} coverage (group {k!r}): "
                    + (f"gap [{pos}, {off})" if off > pos
                       else f"overlap at {off} (expected {pos})")
                )
                pos = off + ln
            assert pos == total, (
                f"{name!r} coverage (group {k!r}): ranges end at {pos}, "
                f"expected {total}"
            )

    def covers_union(self, name: str, total: int, per: Optional[str] = None,
                     offset_field: str = "offset",
                     length_field: str = "length") -> dict:
        """Spans' ranges *union-cover* ``[0, total)``; duplicates allowed.

        The crash-restart variant of :meth:`covers`: a killed worker's
        chunk may be re-copied after resume, so ranges can repeat — but
        there must be no gap.  Returns ``{group: duplicated_bytes}`` so
        callers can bound the re-copy overhead (e.g. at most one chunk
        per crashed worker beyond the journal frontier).
        """
        key = _group_key(per)
        groups: dict[object, list[tuple[int, int]]] = {}
        for ev in self.spans(name):
            args = ev.get("args", {})
            off, ln = args.get(offset_field), args.get(length_field)
            assert off is not None and ln is not None, (
                f"{name!r} span at t={ev['ts']} lacks "
                f"{offset_field!r}/{length_field!r} args"
            )
            groups.setdefault(key(ev), []).append((off, ln))
        assert groups, f"no spans named {name!r} in trace"
        dup_bytes: dict[object, int] = {}
        for k, ranges in groups.items():
            ranges.sort()
            pos = 0
            dup = 0
            for off, ln in ranges:
                assert off <= pos, (
                    f"{name!r} union coverage (group {k!r}): gap [{pos}, {off})"
                )
                end = off + ln
                dup += min(end, pos) - off  # overlap with what's covered
                pos = max(pos, end)
            assert pos >= total, (
                f"{name!r} union coverage (group {k!r}): ranges end at "
                f"{pos}, expected at least {total}"
            )
            dup_bytes[k] = dup
        return dup_bytes

    def sum_args(self, name: str, field: str,
                 per: Optional[str] = None) -> dict:
        """Total of ``args[field]`` over *name* spans, per group."""
        key = _group_key(per)
        totals: dict[object, float] = {}
        for ev in self.spans(name):
            val = ev.get("args", {}).get(field)
            if val is None:
                continue
            k = key(ev)
            totals[k] = totals.get(k, 0) + val
        return totals
