"""Command-line front ends.

The real PFTool ships ``pfls`` / ``pfcp`` / ``pfcm`` binaries users run
inside the archive jail.  Since this reproduction is a simulator, the
CLI builds a self-contained demo site, seeds it with a parameterised
workload, runs the corresponding job, and prints the PFTool report —
useful for exploring tunables (worker counts, chunk sizes, tape
ordering) without writing a script.

* ``repro-pfcp``  — parallel copy scratch -> archive
* ``repro-pfls``  — parallel listing after an archive
* ``repro-pfcm``  — archive then verify
* ``repro-bench`` — print the experiment index and per-experiment notes
"""
