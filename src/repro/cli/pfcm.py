"""``repro-pfcm``: archive a workload and verify the copy byte-for-byte."""

from __future__ import annotations

import argparse

from repro.cli._shared import (
    add_common_args,
    build_site,
    build_workload,
    cfg_from_args,
)

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-pfcm",
        description="Parallel compare (pfcm): archives a demo workload, "
        "then verifies source vs archive content in parallel.",
    )
    add_common_args(parser)
    parser.add_argument("--corrupt", type=int, default=0,
                        help="corrupt N archive files first (to see detection)")
    args = parser.parse_args(argv)

    env, system = build_site(args)
    src = build_workload(args, system)
    env.run(system.archive(src, "/archive/data", cfg_from_args(args)).done)

    corrupted = 0
    if args.corrupt:
        for path, inode in system.archive_fs.walk("/archive/data"):
            if inode.is_file and corrupted < args.corrupt:
                system.archive_fs.set_token(path, 0xBAD0 + corrupted)
                corrupted += 1

    stats = env.run(system.compare(src, "/archive/data", cfg_from_args(args)).done)
    print(f"compared {stats.files_compared} files in {stats.duration:.2f}s "
          f"(simulated): {stats.compare_mismatches} mismatches")
    for line in stats.output_lines:
        if line.startswith("MISMATCH"):
            print(" ", line)
    return 1 if stats.compare_mismatches != corrupted else 0


if __name__ == "__main__":
    raise SystemExit(main())
