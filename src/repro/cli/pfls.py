"""``repro-pfls``: parallel listing of a freshly archived namespace."""

from __future__ import annotations

import argparse

from repro.cli._shared import (
    add_common_args,
    build_site,
    build_workload,
    cfg_from_args,
)

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-pfls",
        description="Parallel list (pfls): archives a demo workload, then "
        "walks the archive namespace in parallel and prints the listing.",
    )
    add_common_args(parser)
    parser.add_argument("--limit", type=int, default=20,
                        help="listing lines to print")
    args = parser.parse_args(argv)

    env, system = build_site(args)
    src = build_workload(args, system)
    env.run(system.archive(src, "/archive/data", cfg_from_args(args)).done)
    stats = env.run(system.list_archive("/archive/data", cfg_from_args(args)).done)
    shown = 0
    for line in stats.output_lines:
        if line.startswith("/archive/") and shown < args.limit:
            print(line)
            shown += 1
    print(f"... {stats.files_seen} files listed in {stats.duration:.2f}s "
          f"(simulated)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
