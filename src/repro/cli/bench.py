"""``repro-bench``: the experiment index and how to regenerate each one."""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

__all__ = ["main"]

EXPERIMENTS = {
    "FIG1": ("Figure 1", "PFS vs archive bandwidth scaling gap",
             "test_fig1_scaling_gap.py"),
    "FIG8": ("Figure 8", "files archived per job (62-job trace)",
             "test_fig8_files_per_job.py"),
    "FIG9": ("Figure 9", "GB archived per job", "test_fig9_bytes_per_job.py"),
    "FIG10": ("Figure 10", "per-job data rate through the full site",
              "test_fig10_data_rate.py"),
    "FIG11": ("Figure 11", "mean file size per job", "test_fig11_file_size.py"),
    "E1": ("§6.1", "small-file tape collapse + aggregation fix",
           "test_e1_small_file_tape.py"),
    "E2": ("§6.2", "LAN-free recall thrashing: naive vs sticky routing",
           "test_e2_recall_thrashing.py"),
    "E3": ("§4.2.6", "synchronous delete vs reconcile tree-walk",
           "test_e3_sync_delete.py"),
    "A1": ("§4.1.2(3)", "single-file N-to-1 parallel copy speedup",
           "test_a1_nto1_copy.py"),
    "A2": ("§4.1.2(4)", "ArchiveFUSE N-to-N vs N-to-1", "test_a2_fuse_nton.py"),
    "A3": ("§4.2.4", "size-balanced vs native migration",
           "test_a3_balanced_migrator.py"),
    "A4": ("§4.5", "restartable chunked transfer", "test_a4_restart.py"),
    "A5": ("§4.1.2(2)", "tape-ordered vs unordered recall",
           "test_a5_tape_order.py"),
    "A6": ("§6.4", "multi-TSM-server scaling (sharded store)",
           "test_a6_multi_tsm.py"),
    "A7": ("§7", "grass-files tar-pipe packing",
           "test_a7_grass_files.py"),
    "A8": ("§4.2.2", "TSM co-location ablation",
           "test_a8_collocation.py"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="List or run the paper-reproduction experiments.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment id to run (e.g. E1); omit to list")
    args = parser.parse_args(argv)

    bench_dir = pathlib.Path(__file__).resolve().parents[3] / "benchmarks"
    if not args.experiment:
        print(f"{'id':<6} {'paper ref':<11} description")
        print("-" * 70)
        for exp, (ref, desc, _) in EXPERIMENTS.items():
            print(f"{exp:<6} {ref:<11} {desc}")
        print(f"\nrun one:  repro-bench E1")
        print(f"run all:  pytest {bench_dir} --benchmark-only")
        return 0

    exp = args.experiment.upper()
    if exp not in EXPERIMENTS:
        print(f"unknown experiment {exp!r}", file=sys.stderr)
        return 2
    target = bench_dir / EXPERIMENTS[exp][2]
    return subprocess.call(
        [sys.executable, "-m", "pytest", str(target), "--benchmark-only",
         "-q", "-s"],
        cwd=str(bench_dir),
    )


if __name__ == "__main__":
    raise SystemExit(main())
