"""``repro-pfcp``: run a parallel archive copy on the simulated site."""

from __future__ import annotations

import argparse

from repro.cli._shared import (
    add_common_args,
    build_site,
    build_workload,
    cfg_from_args,
)

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-pfcp",
        description="Parallel copy (pfcp) on the simulated COTS archive: "
        "seeds a scratch workload, archives it, prints the PFTool report.",
    )
    add_common_args(parser)
    parser.add_argument("--migrate", action="store_true",
                        help="also migrate the archived files to tape")
    args = parser.parse_args(argv)

    env, system = build_site(args)
    src = build_workload(args, system)
    job = system.archive(src, "/archive/data", cfg_from_args(args))
    stats = env.run(job.done)
    print(stats.report())
    if args.migrate:
        report = env.run(system.migrate_to_tape())
        print(
            f"migrated {report.files} files / {report.bytes / 1e9:.1f} GB "
            f"to tape in {report.duration:.0f}s "
            f"(skew {report.skew:.0f}s across {len(report.assignment)} nodes)"
        )
    return 1 if stats.aborted else 0


if __name__ == "__main__":
    raise SystemExit(main())
