"""Shared argument parsing and site construction for the CLI tools."""

from __future__ import annotations

import argparse

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.workloads import JobSpec
from repro.workloads.generators import materialize_job

__all__ = ["add_common_args", "build_site", "build_workload", "cfg_from_args"]

MB = 1_000_000
GB = 1_000_000_000

_UNITS = {"k": 1_000, "kb": 1_000, "m": MB, "mb": MB, "g": GB, "gb": GB,
          "t": 1_000 * GB, "tb": 1_000 * GB}


def parse_size(text: str) -> int:
    """'50MB', '4g', '1024' -> bytes."""
    t = text.strip().lower()
    for suffix, mult in sorted(_UNITS.items(), key=lambda kv: -len(kv[0])):
        if t.endswith(suffix):
            return int(float(t[: -len(suffix)]) * mult)
    return int(float(t))


def add_common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--files", type=int, default=64,
                        help="number of files in the demo workload")
    parser.add_argument("--size", type=parse_size, default=50 * MB,
                        help="mean file size (e.g. 50MB, 2GB)")
    parser.add_argument("--workers", type=int, default=8,
                        help="PFTool Worker ranks")
    parser.add_argument("--readdir", type=int, default=2,
                        help="PFTool ReadDir ranks")
    parser.add_argument("--tapeprocs", type=int, default=4,
                        help="PFTool TapeProc ranks")
    parser.add_argument("--fta", type=int, default=10, help="FTA nodes")
    parser.add_argument("--drives", type=int, default=24, help="tape drives")
    parser.add_argument("--chunk-size", type=parse_size, default=2 * GB,
                        help="N-to-1 copy chunk size")
    parser.add_argument("--no-tape-order", action="store_true",
                        help="disable tape-ordered recall")
    parser.add_argument("--seed", type=int, default=2009)


def build_site(args) -> tuple[Environment, ParallelArchiveSystem]:
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=args.fta,
            n_disk_servers=max(2, args.fta // 2),
            n_tape_drives=args.drives,
            n_scratch_tapes=max(16, args.drives * 2),
            tape_spec=TapeSpec(),
        ),
    )
    return env, system


def build_workload(args, system) -> str:
    job = JobSpec(args.seed, args.files, args.files * args.size)
    materialize_job(system.scratch_fs, job, "/scratch-data", seed=args.seed)
    return "/scratch-data"


def cfg_from_args(args) -> PftoolConfig:
    return PftoolConfig(
        num_workers=args.workers,
        num_readdir=args.readdir,
        num_tapeprocs=args.tapeprocs,
        copy_chunk_size=args.chunk_size,
        tape_ordering=not args.no_tape_order,
    )
