"""Simulated MPI communicator for PFTool's rank-structured processes.

PFTool is an MPI program (Manager / OutPutProc / ReadDir / Worker /
TapeProc / WatchDog ranks exchanging request/assign/result messages).
:class:`SimComm` reproduces the message-passing discipline inside the
DES: each rank has a mailbox, ``send`` is asynchronous with a small
latency, ``recv`` blocks with optional source/tag selection — enough of
MPI's semantics to port the paper's process structure verbatim.
"""

from repro.mpisim.comm import ANY_SOURCE, ANY_TAG, Message, SimComm

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "SimComm"]
