"""Rank-addressed message passing on the DES.

Semantics (the subset of MPI that PFTool uses):

* ``send(src, dst, payload, tag)`` — buffered, non-blocking; the message
  lands in *dst*'s mailbox after ``latency`` simulated seconds.
* ``recv(rank, source=ANY_SOURCE, tag=ANY_TAG)`` — blocks until a
  matching message is available; returns the :class:`Message`.
  Matching is FIFO among eligible messages (MPI ordering guarantee per
  (source, tag) pair is preserved because each pair's messages keep
  their relative order in the mailbox).  The returned event is a
  :class:`~repro.sim.StoreGet`: a rank that races a receive against a
  timer and loses MUST call ``.cancel()`` on it — an abandoned-but-live
  receive would silently consume the next matching message.
* no rendezvous / ready modes — PFTool only posts small control
  messages; bulk data rides the fabric, not the communicator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim import Environment, FilterStore, SimulationError, StoreGet

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "SimComm"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    source: int
    dest: int
    tag: int
    payload: Any


class SimComm:
    """A communicator with a fixed number of ranks.

    Parameters
    ----------
    env:
        Simulation environment.
    size:
        Number of ranks (0 .. size-1).
    latency:
        Per-message delivery delay in seconds (control-plane messages on
        a 10GigE cluster: tens of microseconds).
    """

    def __init__(self, env: Environment, size: int, latency: float = 5e-5) -> None:
        if size < 1:
            raise SimulationError("communicator needs at least one rank")
        self.env = env
        self.size = size
        self.latency = latency
        self._mailboxes = [FilterStore(env) for _ in range(size)]
        self.messages_sent = 0
        #: opt-in :class:`repro.analysis.monitor.InvariantMonitor` hook;
        #: observes every send and every posted receive when set
        self.monitor = None
        #: same-instant delivery batches keyed (src, dst, deliver_at) —
        #: messages of one (src, dst) pair sent at the same instant ride a
        #: single delivery timer and land in send order, so the MPI
        #: non-overtaking guarantee holds under *any* kernel tie-break
        #: policy (permuted schedules may reorder cross-source arrivals,
        #: never same-source ones)
        self._inflight: dict[tuple[int, int, float], list[Message]] = {}
        #: optional delivery-fault hook ``(src, dst, deliver_at) ->
        #: deliver_at`` — a fault injector may postpone a message (e.g.
        #: the destination rank's node is in an outage window).  The
        #: returned time must be monotone in send time per (src, dst)
        #: pair or the MPI non-overtaking guarantee breaks.
        self.delivery_hook = None

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise SimulationError(f"rank {rank} out of range 0..{self.size - 1}")

    def send(self, src: int, dst: int, payload: Any, tag: int = 0) -> None:
        """Buffered send; returns immediately (delivery is delayed)."""
        self._check_rank(src)
        self._check_rank(dst)
        if tag < 0:
            raise SimulationError("tags must be non-negative (negatives are wildcards)")
        self.messages_sent += 1
        msg = Message(src, dst, tag, payload)
        if self.monitor is not None:
            self.monitor.on_send(self, msg)
        deliver_at = self.env.now + self.latency
        if self.delivery_hook is not None and self.latency > 0:
            # the hook's returned time is the batch key verbatim, so two
            # sends postponed to the same instant share one timer and
            # keep their send order (no ulp-level overtaking)
            deliver_at = self.delivery_hook(src, dst, deliver_at)
        hb = self.env.hb
        if hb is not None:
            hb.on_comm_send(self, msg, deliver_at - self.env.now)
        tr = self.env.trace
        if tr.enabled:
            tr.instant("comm:send", tid=f"rank{src}", cat="comm",
                       args={"dst": dst, "tag": tag})
        # Mailboxes are unbounded, so the non-waiting put always succeeds;
        # call_later recycles its timer event, making a send one heap push
        # instead of a Process + init event + Timeout + put event.
        mailbox = self._mailboxes[dst]
        if self.latency > 0:
            key = (src, dst, deliver_at)
            batch = self._inflight.get(key)
            if batch is not None:
                batch.append(msg)  # rides the batch's existing timer
            else:
                self._inflight[key] = batch = [msg]
                self.env.call_later(
                    deliver_at - self.env.now,
                    lambda: self._deliver(key, batch, mailbox),
                )
        else:
            mailbox.put_nowait(msg)

    def _deliver(
        self, key: tuple[int, int, float], batch: list[Message], mailbox
    ) -> None:
        del self._inflight[key]
        # One settle sweep for the whole same-instant batch; HB edges are
        # still recorded per message inside put_batch.  Mailboxes are
        # unbounded so the batch deposit cannot overflow, but keep the
        # per-message fallback for subclasses that bound their mailboxes.
        if not mailbox.put_batch(batch):
            for msg in batch:
                mailbox.put_nowait(msg)

    def recv(
        self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> StoreGet:
        """Blocking receive; event fires with a :class:`Message`.

        Call ``.cancel()`` on the returned event to withdraw an unused
        receive (e.g. when a watchdog timer won the race instead).
        """
        self._check_rank(rank)

        def _match(msg: Message) -> bool:
            if source != ANY_SOURCE and msg.source != source:
                return False
            if tag != ANY_TAG and msg.tag != tag:
                return False
            return True

        get = self._mailboxes[rank].get(_match)
        if self.monitor is not None:
            self.monitor.on_recv(self, rank, get)
        hb = self.env.hb
        if hb is not None:
            hb.on_comm_recv(self, rank, get)
        return get

    def pending(self, rank: int) -> int:
        """Messages waiting in *rank*'s mailbox (probe-ish)."""
        self._check_rank(rank)
        return len(self._mailboxes[rank].items)

    def broadcast(self, src: int, payload: Any, tag: int = 0) -> None:
        """Send to every other rank (a loop of sends, like PFTool's
        shutdown fan-out)."""
        for dst in range(self.size):
            if dst != src:
                self.send(src, dst, payload, tag)

    def __repr__(self) -> str:
        return f"<SimComm size={self.size} sent={self.messages_sent}>"
