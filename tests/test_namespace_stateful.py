"""Stateful property testing of the namespace against a model.

Hypothesis drives random sequences of mkdir/create/unlink/rename and
checks the namespace agrees with a plain-dict model after every step —
the kind of invariant checking that catches reindexing bugs (rename
subtree paths, inode index leaks) that example-based tests miss.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.pfs import Namespace, PathError

NAMES = ("a", "b", "c", "dir1", "dir2")


class NamespaceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ns = Namespace()
        #: model: path -> 'file' | 'dir'
        self.model = {"/": "dir"}

    # -- helpers -----------------------------------------------------------
    def _candidate_paths(self, data):
        depth = data.draw(st.integers(1, 3))
        parts = [data.draw(st.sampled_from(NAMES)) for _ in range(depth)]
        return "/" + "/".join(parts)

    def _parent(self, path):
        return path.rsplit("/", 1)[0] or "/"

    def _subtree(self, path):
        return [p for p in self.model if p == path or p.startswith(path + "/")]

    # -- rules ---------------------------------------------------------
    @rule(data=st.data())
    def mkdir(self, data):
        path = self._candidate_paths(data)
        parent_ok = self.model.get(self._parent(path)) == "dir"
        exists = path in self.model
        try:
            self.ns.mkdir(path, 0.0)
            assert parent_ok and not exists
            self.model[path] = "dir"
        except PathError:
            assert not parent_ok or exists

    @rule(data=st.data())
    def create(self, data):
        path = self._candidate_paths(data)
        parent_ok = self.model.get(self._parent(path)) == "dir"
        exists = path in self.model
        try:
            self.ns.create(path, 0.0)
            assert parent_ok and not exists
            self.model[path] = "file"
        except PathError:
            assert not parent_ok or exists

    @rule(data=st.data())
    def unlink(self, data):
        path = self._candidate_paths(data)
        kind = self.model.get(path)
        has_children = any(p != path for p in self._subtree(path))
        try:
            self.ns.unlink(path)
            assert kind is not None
            assert not (kind == "dir" and has_children)
            del self.model[path]
        except PathError:
            assert kind is None or (kind == "dir" and has_children)

    @rule(data=st.data())
    def rename(self, data):
        src = self._candidate_paths(data)
        dst = self._candidate_paths(data)
        src_kind = self.model.get(src)
        dst_parent_ok = self.model.get(self._parent(dst)) == "dir"
        dst_exists = dst in self.model
        # renaming a directory into its own subtree is degenerate; the
        # model can't express it, and real VFS forbids it too
        into_self = src_kind == "dir" and (dst == src or dst.startswith(src + "/"))
        try:
            self.ns.rename(src, dst)
            assert src_kind is not None and dst_parent_ok and not dst_exists
            if into_self:
                # the namespace accepted a degenerate move; mirror it by
                # dropping the subtree from the model is impossible, so
                # treat as a bug:
                raise AssertionError("rename into own subtree accepted")
            for p in self._subtree(src):
                self.model[dst + p[len(src):]] = self.model.pop(p)
        except PathError:
            assert (
                src_kind is None or not dst_parent_ok or dst_exists or into_self
            )

    # -- invariants -----------------------------------------------------
    @invariant()
    def model_agrees(self):
        for path, kind in self.model.items():
            node = self.ns.lookup(path)
            assert node.is_dir == (kind == "dir"), path
        assert self.ns.n_files == sum(1 for k in self.model.values() if k == "file")
        assert self.ns.n_dirs == sum(1 for k in self.model.values() if k == "dir")

    @invariant()
    def ino_index_consistent(self):
        assert len(self.ns) == len(self.model)
        for path in self.model:
            node = self.ns.lookup(path)
            assert self.ns.path_of(node.ino) == ("/" if path == "/" else path)


NamespaceMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestNamespaceStateful = NamespaceMachine.TestCase
