"""Tests for the N-to-1 shared-file write serialization model."""

import pytest

from repro.disksim import DiskArray
from repro.pfs import GpfsFileSystem, StoragePool
from repro.sim import Environment

GB = 1_000_000_000


def make_fs(env, shared_bw):
    fs = GpfsFileSystem(
        env, "fs", metadata_op_time=0.0, shared_write_bw=shared_bw
    )
    arrays = [
        DiskArray(env, f"a{i}", capacity_bytes=1e15, bandwidth=2e9, seek_time=0.0)
        for i in range(4)
    ]
    fs.add_pool(StoragePool("p", arrays), default=True)
    return fs


def _parallel_range_writes(env, fs, path, total, n_writers):
    def go():
        yield fs.create_sized(path, total)
        chunk = total // n_writers
        evs = [
            fs.write_range(f"c{i}", path, i * chunk, chunk)
            for i in range(n_writers)
        ]
        for ev in evs:
            yield ev

    env.process(go())
    env.run()
    return env.now


def test_single_writer_unaffected_by_lock():
    env = Environment()
    fs = make_fs(env, shared_bw=1e9)
    t = _parallel_range_writes(env, fs, "/f", 8 * GB, 1)
    # disk path: 8GB over 4 arrays at 2GB/s each -> 1s; lock at 1GB/s = 8s
    # single writer: critical section runs concurrently, so 8s dominates
    # only when the lock is SLOWER than I/O. With one writer the lock
    # may still dominate -- compute: max(io=1s, lock=8s) = 8s
    assert t == pytest.approx(8.0, rel=0.05)


def test_nto1_aggregate_capped_at_shared_bw():
    env = Environment()
    fs = make_fs(env, shared_bw=1e9)
    t = _parallel_range_writes(env, fs, "/f", 8 * GB, 8)
    # 8 writers: each lock hold 1s serialized -> >= 8s total
    assert t >= 8.0 * 0.99
    rate = 8 * GB / t
    assert rate <= 1e9 * 1.01


def test_separate_files_not_capped():
    env = Environment()
    fs = make_fs(env, shared_bw=1e9)

    def go():
        evs = []
        for i in range(8):
            yield fs.create_sized(f"/f{i}", 1 * GB)
        for i in range(8):
            evs.append(fs.write_range(f"c{i}", f"/f{i}", 0, 1 * GB))
        for ev in evs:
            yield ev

    env.process(go())
    env.run()
    # 8 x 1GB to 4 arrays at 2GB/s = 8GB/8GB/s aggregate = ~1s
    assert env.now < 2.0


def test_shared_write_model_can_be_disabled():
    env = Environment()
    fs = make_fs(env, shared_bw=0.0)
    t = _parallel_range_writes(env, fs, "/f", 8 * GB, 8)
    assert t < 2.0
