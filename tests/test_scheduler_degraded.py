"""Health-aware degraded-mode scheduling: fence, park, brownout, readmit.

Drives the :class:`~repro.scheduler.ArchiveService` through a
hand-held :class:`~repro.health.HealthView` (observations injected
directly, no detectors) so each degradation path is exercised in
isolation and deterministically.
"""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.health import DOWN, HealthView
from repro.pftool import PftoolConfig
from repro.pftool.loadmanager import LoadManager
from repro.scheduler.admission import AdmissionPolicy, DegradedModePolicy
from repro.scheduler.queues import CANCELLED, COMPLETED, PREEMPTED, QUEUED
from repro.scheduler.service import ArchiveService, SchedulerConfig
from repro.sim import Environment, SimulationError
from repro.workloads.generators import preload_tree

MB = 1_000_000


# ---------------------------------------------------------------------------
# LoadManager fencing / deregistration (satellite fix)
# ---------------------------------------------------------------------------

def test_loadmanager_fence_excludes_from_placement():
    env = Environment()
    lm = LoadManager(env, ["a", "b", "c"])
    lm.fence("b")
    assert lm.fenced == ["b"]
    assert lm.machine_list() == ["a", "c"]
    assert lm.active_nodes == ["a", "c"]
    assert lm.free_slots(4) == 8  # b's headroom is not placeable
    lm.fence("b")  # idempotent
    lm.unfence("b")
    assert lm.fenced == []
    assert lm.machine_list() == ["a", "b", "c"]


def test_loadmanager_fence_unknown_node_raises():
    env = Environment()
    lm = LoadManager(env, ["a"])
    with pytest.raises(SimulationError):
        lm.fence("ghost")
    with pytest.raises(SimulationError):
        lm.unfence("ghost")


def test_loadmanager_job_started_on_fenced_node_is_strict():
    env = Environment()
    lm = LoadManager(env, ["a", "b"])
    lm.fence("b")
    with pytest.raises(SimulationError, match="fenced"):
        lm.job_started(["a", "b"])
    # the rejected start must not have leaked partial accounting
    assert lm.total_load == 0
    # finishing a job that started before the fence is still legal
    lm.unfence("b")
    lm.job_started(["a", "b"])
    lm.fence("b")
    lm.job_finished(["a", "b"])
    assert lm.total_load == 0


def test_loadmanager_deregister_guards():
    env = Environment()
    lm = LoadManager(env, ["a", "b"])
    with pytest.raises(SimulationError, match="unknown"):
        lm.deregister("ghost")
    lm.job_started(["b"])
    with pytest.raises(SimulationError, match="drain or requeue"):
        lm.deregister("b")
    lm.job_finished(["b"])
    lm.fence("b")
    lm.deregister("b")
    assert lm.nodes == ["a"] and lm.fenced == []
    with pytest.raises(SimulationError):
        lm.load_of("b")


# ---------------------------------------------------------------------------
# service under a hand-held HealthView
# ---------------------------------------------------------------------------

def _build(n_fta=4, max_active=4, policy=None):
    env = Environment()
    system = ParallelArchiveSystem(env, ArchiveParams(
        n_fta=n_fta, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=8,
        metadata_op_time=0.0002,
    ))
    service = ArchiveService(system, SchedulerConfig(
        policy=AdmissionPolicy(slots_per_node=12,
                               max_active_jobs=max_active),
        default_cfg=PftoolConfig(
            num_workers=2, num_readdir=1, num_tapeprocs=1,
            stat_batch=8, copy_batch=4,
        ),
    ))
    view = HealthView(env)
    view.register("library", down_after=1)
    view.register("catalog", down_after=1)
    view.register("tsm", down_after=1)
    for node in system.loadmanager.nodes:
        view.register(f"node:{node}", down_after=1)
    service.attach_health(view, degraded=policy or DegradedModePolicy(
        brownout_max_active=1, shed_fraction=0.4,
        readmit_interval=2.0, readmit_jitter=1.0,
        node_down_brownout_fraction=0.5,
    ), seed=42)
    return env, system, service, view


def _submit_tree(env, system, service, tenant, k, op="archive"):
    if op == "archive":
        preload_tree(system.scratch_fs, f"/t/{tenant}{k}", [2 * MB, 1 * MB])
        return service.submit(tenant, op, f"/t/{tenant}{k}",
                              f"/arc/{tenant}{k}")
    return service.submit(tenant, op, f"/arc/{tenant}{k}",
                          f"/back/{tenant}{k}")


def test_attach_health_is_once_only():
    env, system, service, view = _build()
    with pytest.raises(SimulationError, match="already attached"):
        service.attach_health(view)


def test_retrieves_park_while_library_fenced_archives_flow():
    env, system, service, view = _build()
    service.add_tenant("r", weight=1.0)
    service.add_tenant("a", weight=1.0)
    # seed an archive so the retrieve has something to fetch
    t = _submit_tree(env, system, service, "r", 0)
    env.run(service.drain())
    assert t.state == COMPLETED

    view.observe("library", False)
    assert view.state("library") == DOWN
    ret = service.submit("r", "retrieve", "/arc/r0", "/back/r0")
    arc = _submit_tree(env, system, service, "a", 1)
    env.run(until=env.now + 2.0)
    # the retrieve parked on its tenant head; the archive sailed through
    assert ret.state == QUEUED and ret.blocked_on == "library-fenced"
    assert arc.state == COMPLETED

    view.observe("library", True)  # recovery pumps the parked tenant
    env.run(service.drain())
    assert ret.state == COMPLETED


def test_retrieves_park_while_catalog_fenced():
    env, system, service, view = _build()
    service.add_tenant("u", weight=1.0)
    t = _submit_tree(env, system, service, "u", 0)
    env.run(service.drain())
    assert t.state == COMPLETED
    view.observe("catalog", False)
    ret = service.submit("u", "retrieve", "/arc/u0", "/back/u0")
    env.run(until=env.now + 1.0)
    assert ret.state == QUEUED and ret.blocked_on == "catalog-fenced"
    view.observe("catalog", True)
    env.run(service.drain())
    assert ret.state == COMPLETED


def test_node_down_fences_drains_and_auto_resumes():
    env, system, service, view = _build()
    service.add_tenant("u", weight=1.0)
    tickets = [_submit_tree(env, system, service, "u", k) for k in range(2)]
    env.run(until=env.now + 0.005)  # jobs are mid-flight
    active = [t for t in tickets if t.state == "active"]
    assert active
    victim_node = active[0].nodes_used[0]

    view.observe(f"node:{victim_node}", False)
    assert victim_node in system.loadmanager.fenced
    env.run(service.drain())
    env.run()

    # drained jobs were preempted with the health flag and auto-resumed
    assert service.health_requeues >= 1
    requeued = [t for t in tickets if t.state == PREEMPTED]
    assert requeued and all(t.health_requeued for t in requeued)
    resumed = [
        t for t in service._tickets.values() if t.resume_of is not None
    ]
    assert {t.resume_of for t in resumed} == {t.job_id for t in requeued}
    assert all(t.state == COMPLETED for t in resumed)
    # resumes landed off the fenced node
    assert all(victim_node not in t.nodes_used for t in resumed)

    view.observe(f"node:{victim_node}", True)
    assert victim_node not in system.loadmanager.fenced


def test_tsm_down_enters_brownout_sheds_and_readmits():
    env, system, service, view = _build()
    for name, w in (("heavy", 3.0), ("mid", 2.0), ("light", 1.0)):
        service.add_tenant(name, weight=w)

    view.observe("tsm", False)
    assert service.brownout
    # shed_fraction 0.4 of 3 tenants = 1: the lowest-share tenant
    assert service.shed_tenants == ["light"]
    assert service._admission.max_active == 1

    # the shed tenant's submissions queue but do not dispatch
    t_light = _submit_tree(env, system, service, "light", 0)
    t_heavy = _submit_tree(env, system, service, "heavy", 0)
    env.run(until=env.now + 1.0)
    assert t_light.state == QUEUED
    assert t_heavy.state in ("active", "completed")

    view.observe("tsm", True)  # recovery: jittered readmission
    assert not service.brownout
    assert service.shed_tenants == ["light"]  # not yet readmitted
    env.run(service.drain())
    env.run()
    assert service.shed_tenants == []
    assert t_light.state == COMPLETED
    assert service.degraded_summary()["brownouts"] == 1
    assert service.brownout_time() > 0.0


def test_fenced_majority_forces_brownout_without_tsm():
    env, system, service, view = _build()
    service.add_tenant("u", weight=1.0)
    nodes = list(system.loadmanager.nodes)
    view.observe(f"node:{nodes[0]}", False)
    assert not service.brownout  # 1/4 fenced < 0.5
    view.observe(f"node:{nodes[1]}", False)
    assert service.brownout  # 2/4 fenced >= 0.5
    view.observe(f"node:{nodes[0]}", True)
    assert not service.brownout


def test_pool_shrunk_cancels_unrunnable_ticket():
    env, system, service, view = _build(n_fta=2)
    service.add_tenant("u", weight=1.0)
    a, b = system.loadmanager.nodes
    # fence the whole pool so the big job queues instead of dispatching
    view.observe(f"node:{a}", False)
    view.observe(f"node:{b}", False)
    # 21 ranks validate against 2 nodes x 12 slots, but nothing is free
    big_cfg = PftoolConfig(num_workers=16, num_readdir=1, num_tapeprocs=1)
    preload_tree(system.scratch_fs, "/t/big", [2 * MB])
    big = service.submit("u", "archive", "/t/big", "/arc/big", cfg=big_cfg)
    assert big.ranks == 21
    assert big.state == QUEUED and big.blocked_on == "fta-load"
    # the pool permanently shrinks under the queued ticket
    system.loadmanager.deregister(b)
    view.observe(f"node:{a}", True)  # recovery pumps the queue
    # 21 ranks can never fit 1 node x 12 slots: settled, not pinned
    assert big.state == CANCELLED
    assert big.blocked_on == "pool-shrunk"
    s = service.summary()
    assert s["submitted"] == s["completed"] + s["cancelled"] + s["preempted"]
    assert s["cancelled"] == 1
