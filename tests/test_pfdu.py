"""Tests for pfdu — the tape-safe parallel disk-usage rollup."""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec

MB = 1_000_000
GB = 1_000_000_000

SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def build(env):
    return ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=4, n_disk_servers=2, n_tape_drives=2,
                      n_scratch_tapes=8, tape_spec=SPEC),
    )


def seed(env, system):
    def go():
        for proj, sizes in (("alpha", [10, 20]), ("beta", [5, 5, 5])):
            system.archive_fs.mkdir(f"/arc/{proj}", parents=True)
            for i, mb in enumerate(sizes):
                yield system.archive_fs.write_file(
                    "fta0", f"/arc/{proj}/f{i}", mb * MB
                )

    env.run(env.process(go()))


def cfg():
    return PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0)


def test_pfdu_rolls_up_per_subtree():
    env = Environment()
    system = build(env)
    seed(env, system)
    job = system.du("/arc", cfg())
    stats = env.run(job.done)
    assert stats.files_seen == 5
    assert stats.bytes_copied == 0  # du moves no data
    du_lines = [l for l in stats.output_lines if "\t" in l and "/arc/" in l]
    parsed = {}
    for line in du_lines:
        nbytes, files, key = line.split("\t")
        parsed[key] = (int(files), int(nbytes))
    assert parsed["/arc/alpha"] == (2, 30 * MB)
    assert parsed["/arc/beta"] == (3, 15 * MB)


def test_pfdu_does_not_recall_migrated_files():
    """The whole point: du on a migrated tree touches zero tape."""
    env = Environment()
    system = build(env)
    seed(env, system)
    env.run(system.migrate_to_tape())
    mounts_before = system.library.total_mounts
    stats = env.run(system.du("/arc", cfg()).done)
    assert stats.files_seen == 5
    assert system.library.total_mounts == mounts_before
    assert system.tsm.bytes_retrieved == 0


def test_pfdu_in_jail():
    env = Environment()
    system = build(env)
    system.jail.check("pfdu /arc")  # allowed
    with pytest.raises(PermissionError):
        system.jail.check("du -s /arc")  # raw du is not shipped
