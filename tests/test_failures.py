"""Failure-injection tests: drive faults, stalled jobs, degraded service."""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment, SimulationError
from repro.tapesim import TapeLibrary, TapeSpec
from repro.tsm import TsmServer
from repro.workloads import small_file_flood

MB = 1_000_000
GB = 1_000_000_000

SPEC = TapeSpec(
    native_rate=100e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=1e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def test_failed_drive_rejects_io():
    env = Environment()
    lib = TapeLibrary(env, n_drives=1, spec=SPEC, n_scratch=4)
    cart = lib.select_output_volume(1000)

    def go():
        d = yield lib.acquire_drive(cart.volume)
        lib.fail_drive(d.name)
        yield d.write_object("n", "o1", 1000)

    with pytest.raises(SimulationError, match="failed"):
        env.run(env.process(go()))


def test_allocator_skips_failed_drives():
    env = Environment()
    lib = TapeLibrary(env, n_drives=3, spec=SPEC, n_scratch=8, robot_exchange=2.0)
    lib.fail_drive("drv00")
    lib.fail_drive("drv02")
    cart = lib.select_output_volume(1000)

    def go():
        d = yield lib.acquire_drive(cart.volume)
        name = d.name
        lib.release_drive(d)
        return name

    assert env.run(env.process(go())) == "drv01"
    assert len(lib.healthy_drives) == 1


def test_acquire_waits_for_repair_when_all_failed():
    env = Environment()
    lib = TapeLibrary(env, n_drives=1, spec=SPEC, n_scratch=4, robot_exchange=2.0)
    lib.fail_drive("drv00")
    cart = lib.select_output_volume(1000)
    got = []

    def user():
        d = yield lib.acquire_drive(cart.volume)
        got.append((env.now, d.name))
        lib.release_drive(d)

    def repair():
        yield env.timeout(100.0)
        lib.repair_drive("drv00")

    env.process(user())
    env.process(repair())
    env.run()
    assert got and got[0][0] >= 100.0


def test_unknown_drive_name():
    env = Environment()
    lib = TapeLibrary(env, n_drives=1, spec=SPEC, n_scratch=2)
    with pytest.raises(SimulationError):
        lib.fail_drive("drv99")


def test_migration_survives_drive_failure_mid_fleet():
    """Losing drives degrades throughput but the work completes."""
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=4, n_disk_servers=2, n_tape_drives=4,
                      n_scratch_tapes=16, tape_spec=SPEC),
    )
    paths = small_file_flood(system.archive_fs, "/d", 24, 40 * MB)
    system.library.fail_drive("drv01")
    system.library.fail_drive("drv03")
    report = env.run(system.migrate_to_tape())
    assert report.files == 24
    # only healthy drives did work
    assert system.library.drives[1].bytes_written == 0
    assert system.library.drives[3].bytes_written == 0
    assert (
        system.library.drives[0].bytes_written
        + system.library.drives[2].bytes_written
        == 24 * 40 * MB
    )


def test_watchdog_kills_stalled_job():
    """A job whose tape volume is stuck in a failed drive stalls; the
    WatchDog aborts it instead of hanging forever (§4.1.1)."""
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=2, n_disk_servers=2, n_tape_drives=1,
                      n_scratch_tapes=4, tape_spec=SPEC),
    )
    paths = small_file_flood(system.archive_fs, "/cold", 4, 10 * MB)
    env.run(system.hsm.migrate("fta0", paths))
    env.run(system.exporter.run_once())
    # the volume's only path back is the one drive; kill it
    system.library.fail_drive("drv00")
    # the mounted cartridge is trapped: recalls cannot proceed
    cfg = PftoolConfig(
        num_workers=2, num_readdir=1, num_tapeprocs=1,
        watchdog_interval=50.0, stall_timeout=300.0,
    )
    job = system.retrieve("/cold", "/back", cfg)

    def guard():
        # hard stop in case the watchdog logic itself is broken
        yield env.timeout(1e6)

    env.process(guard())
    stats = env.run(job.done)
    assert stats.aborted
    assert "watchdog" in stats.abort_reason


def test_repair_restores_service():
    env = Environment()
    lib = TapeLibrary(env, n_drives=1, spec=SPEC, n_scratch=4, robot_exchange=2.0)
    lib.fail_drive("drv00")
    lib.repair_drive("drv00")
    cart = lib.select_output_volume(1000)

    def go():
        d = yield lib.acquire_drive(cart.volume)
        ext = yield d.write_object("n", "o", 1000)
        lib.release_drive(d)
        return ext

    ext = env.run(env.process(go()))
    assert ext.seq == 1
