"""The health plane: detectors, breakers, HealthView, site monitor.

The stateful hypothesis machine at the bottom pins the breaker's load-
bearing invariant — the ONLY edge into ``closed`` is a ``half_open``
probe success — against arbitrary interleavings of failures, successes,
gating calls and clock advances.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.faults import FaultPlan
from repro.health import (
    CLOSED,
    DOWN,
    HALF_OPEN,
    OPEN,
    SUSPECT,
    UP,
    CircuitBreaker,
    HealthView,
)
from repro.health.detector import DetectorConfig, FailureDetector
from repro.health.monitor import SiteHealthMonitor, verify_catalog
from repro.sim import Environment, SimulationError


def _advance(env, dt):
    env.run(until=env.now + dt)


# ---------------------------------------------------------------------------
# HealthView
# ---------------------------------------------------------------------------

def test_view_states_and_phi():
    env = Environment()
    view = HealthView(env)
    view.register("tsm", probe_interval=5.0, phi_threshold=2.0, down_after=2)

    assert view.state("tsm") == UP
    assert view.state("unregistered") == UP  # health is opt-in

    view.observe("tsm", False)
    assert view.state("tsm") == SUSPECT
    view.observe("tsm", False)
    assert view.state("tsm") == DOWN
    view.observe("tsm", True)
    assert view.state("tsm") == UP

    # phi-style suspicion: no observations for > phi_threshold intervals
    _advance(env, 11.0)
    assert view.phi("tsm") == pytest.approx(11.0 / 5.0)
    assert view.state("tsm") == SUSPECT


def test_view_publishes_transitions_to_subscribers():
    env = Environment()
    view = HealthView(env)
    view.register("node:fta0", down_after=2)
    seen = []
    view.subscribe(lambda name, old, new: seen.append((name, old, new)))

    view.observe("node:fta0", False)
    view.observe("node:fta0", False)
    view.observe("node:fta0", True)
    assert seen == [
        ("node:fta0", UP, SUSPECT),
        ("node:fta0", SUSPECT, DOWN),
        ("node:fta0", DOWN, UP),
    ]
    assert view.component("node:fta0").history == [
        (0.0, SUSPECT), (0.0, DOWN), (0.0, UP),
    ]


def test_view_duplicate_registration_rejected():
    env = Environment()
    view = HealthView(env)
    view.register("x")
    with pytest.raises(SimulationError):
        view.register("x")


def test_on_fault_counts_and_trips_breaker():
    env = Environment()
    view = HealthView(env)
    brk = CircuitBreaker(env, "tsm", failure_threshold=2, reset_timeout=10.0)
    view.register("tsm", breaker=brk)

    view.on_fault("tsm", "tsm")
    assert view.fault_counts[("tsm", "tsm")] == 1
    assert view.state("tsm") == UP  # one failure, threshold 2
    view.on_fault("tsm", "tsm")
    # client-observed errors tripped the breaker between probes
    assert brk.state == OPEN
    assert view.state("tsm") == DOWN


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------

def test_breaker_trip_halfopen_close_cycle():
    env = Environment()
    brk = CircuitBreaker(env, "lib", failure_threshold=2, reset_timeout=10.0)
    assert brk.allow()
    brk.record_failure()
    assert brk.state == CLOSED
    brk.record_failure()
    assert brk.state == OPEN
    assert not brk.allow()  # still inside the reset window

    _advance(env, 10.0)
    assert brk.allow()  # admits the single trial
    assert brk.state == HALF_OPEN
    brk.record_success()
    assert brk.state == CLOSED
    assert [(frm, to) for _, frm, to in brk.transitions] == [
        (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED),
    ]


def test_breaker_halfopen_failure_reopens_and_restarts_clock():
    env = Environment()
    brk = CircuitBreaker(env, "lib", failure_threshold=1, reset_timeout=5.0)
    brk.record_failure()
    _advance(env, 5.0)
    assert brk.allow() and brk.state == HALF_OPEN
    brk.record_failure()
    assert brk.state == OPEN
    _advance(env, 4.0)
    assert not brk.allow()  # reset clock restarted at the re-open
    _advance(env, 1.0)
    assert brk.allow() and brk.state == HALF_OPEN


def test_breaker_success_while_closed_resets_failure_count():
    env = Environment()
    brk = CircuitBreaker(env, "x", failure_threshold=3)
    brk.record_failure()
    brk.record_failure()
    brk.record_success()
    brk.record_failure()
    brk.record_failure()
    assert brk.state == CLOSED  # never 3 consecutive


# ---------------------------------------------------------------------------
# FailureDetector
# ---------------------------------------------------------------------------

def test_detector_marks_down_and_recovers_with_backoff():
    env = Environment()
    view = HealthView(env)
    cfg = DetectorConfig(probe_interval=5.0, down_after=2,
                         probe_backoff=1.0, probe_backoff_max=4.0)
    view.register("svc", probe_interval=cfg.probe_interval,
                  down_after=cfg.down_after)
    healthy = [True]
    det = FailureDetector(env, view, "svc", lambda: healthy[0], config=cfg)

    _advance(env, 12.0)  # healthy probes at 0, 5, 10
    assert view.state("svc") == UP
    probes_before = det.probes

    healthy[0] = False
    # failure backoff probes at 15, 16, 18, 22, 26 (1, 2, 4, 4 capped)
    _advance(env, 15.0)  # now = 27
    assert view.state("svc") == DOWN
    # backoff re-probes faster than the healthy interval would have
    assert det.probes - probes_before >= 4

    healthy[0] = True
    _advance(env, 5.0)
    assert view.state("svc") == UP
    det.stop()
    env.run()  # queue drains: the daemon loop is gone


def test_detector_open_breaker_suppresses_probes():
    env = Environment()
    view = HealthView(env)
    cfg = DetectorConfig(probe_interval=2.0, down_after=2,
                         probe_backoff=1.0, probe_backoff_max=2.0,
                         breaker_failures=2, breaker_reset=30.0)
    brk = CircuitBreaker(env, "svc", failure_threshold=cfg.breaker_failures,
                         reset_timeout=cfg.breaker_reset)
    view.register("svc", probe_interval=cfg.probe_interval,
                  down_after=cfg.down_after, breaker=brk)
    det = FailureDetector(env, view, "svc", lambda: False, config=cfg)

    _advance(env, 10.0)
    assert brk.state == OPEN
    tripped_at = det.probes
    _advance(env, 15.0)  # still inside reset_timeout
    assert det.probes == tripped_at  # open breaker: no probe traffic
    det.stop()


# ---------------------------------------------------------------------------
# SiteHealthMonitor
# ---------------------------------------------------------------------------

def _small_site(env):
    return ParallelArchiveSystem(env, ArchiveParams(
        n_fta=2, n_disk_servers=1, n_tape_drives=2, n_scratch_tapes=4,
    ))


def test_monitor_watches_standard_components():
    env = Environment()
    system = _small_site(env)
    mon = SiteHealthMonitor(env, system, config=DetectorConfig(
        probe_interval=2.0, down_after=2))
    names = set(mon.view.components)
    assert {"library", "tsm", "catalog"} <= names
    assert {n for n in names if n.startswith("node:")} == {
        f"node:{n}" for n in system.loadmanager.nodes
    }
    assert mon.breaker("library") is not None
    assert mon.breaker("tsm") is not None

    _advance(env, 10.0)
    assert all(s == UP for s in mon.view.snapshot().values())
    mon.stop()
    env.run()


def test_monitor_sees_library_outage_and_recovery():
    env = Environment()
    system = _small_site(env)
    mon = SiteHealthMonitor(env, system, config=DetectorConfig(
        probe_interval=2.0, down_after=2, probe_backoff=1.0,
        probe_backoff_max=2.0, breaker_failures=2, breaker_reset=6.0))
    system.inject_faults(
        FaultPlan(7).library_outage(start=4.0, duration=12.0),
        health=mon.view,
    )
    _advance(env, 10.0)
    assert mon.view.state("library") == DOWN
    _advance(env, 20.0)  # repair + breaker reset + half-open probe
    assert mon.view.state("library") == UP
    # the breaker walked the legal reopen path, ending closed
    edges = [(f, t) for _, f, t in mon.breaker("library").transitions]
    assert edges[0] == (CLOSED, OPEN)
    assert edges[-1] == (HALF_OPEN, CLOSED)
    mon.stop()


def test_verify_catalog_counts_damage():
    env = Environment()
    system = _small_site(env)
    system.scratch_fs.mkdir("/d", parents=True)
    env.run(system.scratch_fs.create_sized("/d/f0", 4_000_000))
    env.run(system.archive("/d", "/arc/d").done)
    env.run(system.migrate_to_tape())
    assert verify_catalog(system.tapedb, system.tsm) == 0
    system.inject_faults(FaultPlan(3).catalog_corruption(at=1.0, rows=1))
    _advance(env, 2.0)
    assert verify_catalog(system.tapedb, system.tsm) >= 1
    # reconcile: re-export restores the index from TSM's ground truth
    env.run(system.exporter.run_once())
    assert verify_catalog(system.tapedb, system.tsm) == 0


# ---------------------------------------------------------------------------
# stateful breaker machine
# ---------------------------------------------------------------------------

class BreakerMachine(RuleBasedStateMachine):
    """Arbitrary action interleavings never forge a closed-ward edge.

    Tracks every ``record_success()`` issued while the breaker sat in
    ``half_open`` — the only legitimate cause of a ``-> closed``
    transition — and checks the transition ledger edge by edge.
    """

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.brk = CircuitBreaker(self.env, "svc", failure_threshold=2,
                                  reset_timeout=5.0)
        #: times at which a half-open probe success happened
        self.legal_closes = []
        self.checked = 0

    @rule()
    def fail(self):
        self.brk.record_failure()

    @rule()
    def succeed(self):
        if self.brk.state == HALF_OPEN:
            self.legal_closes.append(self.env.now)
        self.brk.record_success()

    @rule()
    def gate(self):
        allowed = self.brk.allow()
        if self.brk.state == OPEN:
            assert not allowed

    @rule(dt=st.floats(min_value=0.5, max_value=10.0))
    def advance(self, dt):
        _advance(self.env, dt)

    @invariant()
    def closed_only_via_halfopen_success(self):
        closes = [
            (t, frm) for t, frm, to in self.brk.transitions if to == CLOSED
        ]
        for t, frm in closes:
            assert frm == HALF_OPEN, f"illegal {frm} -> closed at t={t}"
            assert t in self.legal_closes, (
                f"closed at t={t} without a half-open probe success"
            )

    @invariant()
    def edges_are_legal(self):
        legal = {
            (CLOSED, OPEN), (OPEN, HALF_OPEN),
            (HALF_OPEN, OPEN), (HALF_OPEN, CLOSED),
        }
        edges = [(f, t) for _, f, t in self.brk.transitions]
        assert all(e in legal for e in edges), edges
        # ...and consecutive transitions chain: to[i] == from[i+1]
        for (_, _, to), (_, frm, _) in zip(self.brk.transitions,
                                           self.brk.transitions[1:]):
            assert to == frm


TestBreakerStateful = BreakerMachine.TestCase
TestBreakerStateful.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None,
)
