"""Tests for the namespace tree and inode bookkeeping."""

import pytest

from repro.pfs import Namespace, PathError
from repro.pfs.inode import FileKind, HsmState, Inode


def test_mkdir_create_lookup():
    ns = Namespace()
    ns.mkdir("/a", 0.0)
    ns.mkdir("/a/b", 0.0)
    f = ns.create("/a/b/file.dat", 1.0)
    assert ns.lookup("/a/b/file.dat") is f
    assert ns.lookup("/a").is_dir
    assert ns.n_files == 1
    assert ns.n_dirs == 3  # root, a, b


def test_mkdir_parents():
    ns = Namespace()
    ns.mkdir("/x/y/z", 0.0, parents=True)
    assert ns.lookup("/x/y/z").is_dir
    # idempotent on existing components
    ns.mkdir("/x/y/z/w", 0.0, parents=True)
    assert ns.lookup("/x/y/z/w").is_dir


def test_create_missing_parent_fails():
    ns = Namespace()
    with pytest.raises(PathError):
        ns.create("/no/such/dir/file", 0.0)


def test_duplicate_create_fails():
    ns = Namespace()
    ns.create("/f", 0.0)
    with pytest.raises(PathError):
        ns.create("/f", 0.0)


def test_unlink_file_and_counts():
    ns = Namespace()
    ns.create("/f", 0.0)
    ns.unlink("/f")
    assert not ns.exists("/f")
    assert ns.n_files == 0


def test_unlink_nonempty_dir_fails():
    ns = Namespace()
    ns.mkdir("/d", 0.0)
    ns.create("/d/f", 0.0)
    with pytest.raises(PathError):
        ns.unlink("/d")
    ns.unlink("/d/f")
    ns.unlink("/d")
    assert ns.n_dirs == 1


def test_rename_moves_subtree_and_reindexes():
    ns = Namespace()
    ns.mkdir("/a/b", 0.0, parents=True)
    f = ns.create("/a/b/f", 0.0)
    ns.mkdir("/new", 0.0)
    ns.rename("/a/b", "/new/b2")
    assert ns.lookup("/new/b2/f") is f
    assert not ns.exists("/a/b")
    assert ns.path_of(f.ino) == "/new/b2/f"


def test_rename_refuses_clobber():
    ns = Namespace()
    ns.create("/a", 0.0)
    ns.create("/b", 0.0)
    with pytest.raises(PathError):
        ns.rename("/a", "/b")


def test_readdir_sorted():
    ns = Namespace()
    ns.mkdir("/d", 0.0)
    for name in ("zeta", "alpha", "mid"):
        ns.create(f"/d/{name}", 0.0)
    assert [n for n, _ in ns.readdir("/d")] == ["alpha", "mid", "zeta"]


def test_walk_visits_everything():
    ns = Namespace()
    ns.mkdir("/p/q", 0.0, parents=True)
    ns.create("/p/f1", 0.0)
    ns.create("/p/q/f2", 0.0)
    paths = {p for p, _ in ns.walk("/")}
    assert {"/", "/p", "/p/q", "/p/f1", "/p/q/f2"} == paths


def test_walk_subtree_only():
    ns = Namespace()
    ns.mkdir("/p/q", 0.0, parents=True)
    ns.create("/p/q/f", 0.0)
    ns.create("/other", 0.0)
    paths = {p for p, _ in ns.walk("/p")}
    assert "/other" not in paths
    assert "/p/q/f" in paths


def test_iter_inodes_in_ino_order():
    ns = Namespace()
    ns.create("/b", 0.0)
    ns.create("/a", 0.0)
    inos = [n.ino for _, n in ns.iter_inodes()]
    assert inos == sorted(inos)


def test_by_ino_and_path_of():
    ns = Namespace()
    f = ns.create("/deep", 0.0)
    assert ns.by_ino(f.ino) is f
    assert ns.path_of(f.ino) == "/deep"
    ns.unlink("/deep")
    with pytest.raises(PathError):
        ns.by_ino(f.ino)


def test_dotdot_rejected():
    ns = Namespace()
    with pytest.raises(PathError):
        ns.lookup("/a/../b")


def test_inode_touch_data_resets_hsm_state():
    ino = Inode(FileKind.FILE, 0.0)
    ino.hsm_state = HsmState.MIGRATED
    ino.touch_data(5.0, 100, token=7)
    assert ino.hsm_state is HsmState.RESIDENT
    assert ino.size == 100
    assert ino.content_token == 7


def test_stub_resident_bytes_zero():
    ino = Inode(FileKind.FILE, 0.0)
    ino.size = 1000
    assert ino.resident_bytes == 1000
    ino.hsm_state = HsmState.MIGRATED
    assert ino.resident_bytes == 0
