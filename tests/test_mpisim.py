"""Tests for the simulated MPI communicator."""

import pytest

from repro.mpisim import ANY_SOURCE, ANY_TAG, Message, SimComm
from repro.sim import Environment, SimulationError


def test_send_recv_roundtrip():
    env = Environment()
    comm = SimComm(env, 2, latency=0.001)
    got = []

    def receiver():
        msg = yield comm.recv(1)
        got.append(msg)

    def sender():
        comm.send(0, 1, {"work": 42}, tag=7)
        yield env.timeout(0)

    env.process(receiver())
    env.process(sender())
    env.run()
    assert got[0].payload == {"work": 42}
    assert got[0].source == 0
    assert got[0].tag == 7
    assert env.now == pytest.approx(0.001)


def test_recv_blocks_until_message():
    env = Environment()
    comm = SimComm(env, 2, latency=0.0)
    times = []

    def receiver():
        yield comm.recv(0)
        times.append(env.now)

    def sender():
        yield env.timeout(5.0)
        comm.send(1, 0, "late")

    env.process(receiver())
    env.process(sender())
    env.run()
    assert times == [5.0]


def test_tag_filtering():
    env = Environment()
    comm = SimComm(env, 2, latency=0.0)
    order = []

    def receiver():
        msg = yield comm.recv(1, tag=9)
        order.append(("nine", msg.payload))
        msg = yield comm.recv(1, tag=1)
        order.append(("one", msg.payload))

    def sender():
        comm.send(0, 1, "first", tag=1)
        comm.send(0, 1, "second", tag=9)
        yield env.timeout(0)

    env.process(receiver())
    env.process(sender())
    env.run()
    assert order == [("nine", "second"), ("one", "first")]


def test_source_filtering():
    env = Environment()
    comm = SimComm(env, 3, latency=0.0)
    got = []

    def receiver():
        msg = yield comm.recv(2, source=1)
        got.append(msg.source)

    def senders():
        comm.send(0, 2, "noise")
        comm.send(1, 2, "signal")
        yield env.timeout(0)

    env.process(receiver())
    env.process(senders())
    env.run()
    assert got == [1]


def test_fifo_order_per_pair():
    env = Environment()
    comm = SimComm(env, 2, latency=0.0001)
    got = []

    def receiver():
        for _ in range(5):
            msg = yield comm.recv(1, source=0)
            got.append(msg.payload)

    def sender():
        for i in range(5):
            comm.send(0, 1, i)
        yield env.timeout(0)

    env.process(receiver())
    env.process(sender())
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_broadcast_reaches_everyone_but_source():
    env = Environment()
    comm = SimComm(env, 4, latency=0.0)
    got = []

    def receiver(rank):
        msg = yield comm.recv(rank)
        got.append((rank, msg.payload))

    for r in range(1, 4):
        env.process(receiver(r))
    comm.broadcast(0, "shutdown")
    env.run()
    assert sorted(got) == [(1, "shutdown"), (2, "shutdown"), (3, "shutdown")]
    assert comm.pending(0) == 0


def test_pending_counts_mailbox():
    env = Environment()
    comm = SimComm(env, 2, latency=0.0)
    comm.send(0, 1, "a")
    comm.send(0, 1, "b")
    env.run()
    assert comm.pending(1) == 2


def test_invalid_ranks_and_tags():
    env = Environment()
    comm = SimComm(env, 2)
    with pytest.raises(SimulationError):
        comm.send(0, 5, "x")
    with pytest.raises(SimulationError):
        comm.recv(9)
    with pytest.raises(SimulationError):
        comm.send(0, 1, "x", tag=-1)
    with pytest.raises(SimulationError):
        SimComm(env, 0)


def test_message_counter():
    env = Environment()
    comm = SimComm(env, 3, latency=0.0)
    comm.send(0, 1, "x")
    comm.broadcast(2, "y")
    assert comm.messages_sent == 3
