"""Tests for workload generation and calibration against the paper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disksim import DiskArray
from repro.pfs import GpfsFileSystem, StoragePool
from repro.sim import Environment, RandomStreams
from repro.workloads import (
    JobSpec,
    PAPER_62_JOBS,
    generate_open_science_trace,
    huge_file_campaign,
    lognormal_sizes,
    materialize_job,
    small_file_flood,
)


# ---------------------------------------------------------------------------
# size distribution
# ---------------------------------------------------------------------------

def test_lognormal_sizes_hit_requested_mean():
    rng = RandomStreams(1).stream("t")
    sizes = lognormal_sizes(rng, 10_000, 50_000_000)
    assert sizes.mean() == pytest.approx(50_000_000, rel=0.01)
    assert (sizes >= 1024).all()


def test_lognormal_sizes_empty_and_tiny_mean():
    rng = RandomStreams(1).stream("t")
    assert len(lognormal_sizes(rng, 0, 1e6)) == 0
    sizes = lognormal_sizes(rng, 100, 10)  # below min -> clamped
    assert (sizes >= 1024).all()


@given(n=st.integers(1, 2000), mean=st.floats(2e3, 1e9))
@settings(max_examples=50, deadline=None)
def test_lognormal_sizes_total_near_target(n, mean):
    rng = RandomStreams(7).stream("t")
    sizes = lognormal_sizes(rng, n, mean)
    target = n * max(mean, 1024)
    assert sizes.sum() >= 0.8 * target  # min-clamp can only push up
    assert sizes.sum() <= 1.6 * target


# ---------------------------------------------------------------------------
# open science trace
# ---------------------------------------------------------------------------

def test_trace_matches_paper_statistics():
    t = generate_open_science_trace()
    s = t.summary()
    P = PAPER_62_JOBS
    assert s["n_jobs"] == 62
    # extremes pinned exactly
    assert s["files_min"] == P["files_min"]
    assert s["files_max"] == P["files_max"]
    assert s["bytes_min"] == P["bytes_min"]
    assert s["bytes_max"] == P["bytes_max"]
    assert s["mean_size_min"] == pytest.approx(P["mean_size_min"], rel=0.01)
    assert s["mean_size_max"] == pytest.approx(P["mean_size_max"], rel=0.01)
    # means close
    assert s["files_mean"] == pytest.approx(P["files_mean"], rel=0.02)
    assert s["bytes_mean"] == pytest.approx(P["bytes_mean"], rel=0.02)
    assert s["mean_size_mean"] == pytest.approx(P["mean_size_mean"], rel=0.10)


def test_trace_deterministic_per_seed():
    a = generate_open_science_trace(seed=5)
    b = generate_open_science_trace(seed=5)
    c = generate_open_science_trace(seed=6)
    assert [(j.n_files, j.total_bytes) for j in a.jobs] == [
        (j.n_files, j.total_bytes) for j in b.jobs
    ]
    assert [(j.n_files, j.total_bytes) for j in a.jobs] != [
        (j.n_files, j.total_bytes) for j in c.jobs
    ]


def test_jobspec_scaling_preserves_mean_size():
    job = JobSpec(0, 1_000_000, 8_000_000_000_000)
    scaled = job.scaled(500)
    assert scaled.n_files == 500
    assert scaled.mean_size == pytest.approx(job.mean_size, rel=0.01)
    small = JobSpec(1, 10, 1000)
    assert small.scaled(500) is small


def test_all_jobs_valid():
    t = generate_open_science_trace()
    for j in t.jobs:
        assert j.n_files >= 1
        assert j.total_bytes >= j.n_files * 1000  # >= ~1KB files
        assert j.mean_size <= 4.3e9


# ---------------------------------------------------------------------------
# materialisation
# ---------------------------------------------------------------------------

def _fs(env):
    fs = GpfsFileSystem(env, "scratch", metadata_op_time=0.0)
    arr = DiskArray(env, "a", capacity_bytes=1e16, bandwidth=1e9, seek_time=0.0)
    fs.add_pool(StoragePool("p", [arr]), default=True)
    return fs


def test_materialize_job_creates_exact_count():
    env = Environment()
    fs = _fs(env)
    job = JobSpec(3, 700, 700 * 10_000_000)
    info = materialize_job(fs, job, "/job3")
    assert info["n_files"] == 700
    assert fs.namespace.n_files == 700
    assert info["total_bytes"] == pytest.approx(job.total_bytes, rel=0.02)
    # setup is instantaneous
    assert env.now == 0.0


def test_materialize_spreads_over_directories():
    env = Environment()
    fs = _fs(env)
    materialize_job(fs, JobSpec(1, 600, 600 * 2_000_000), "/j", files_per_dir=100)
    dirs = [p for p, n in fs.walk("/j") if n.is_dir and p != "/j"]
    assert len(dirs) == 6


def test_small_file_flood():
    env = Environment()
    fs = _fs(env)
    paths = small_file_flood(fs, "/flood", 50, file_size=8_000_000)
    assert len(paths) == 50
    assert all(fs.lookup(p).size == 8_000_000 for p in paths)


def test_huge_file_campaign():
    env = Environment()
    fs = _fs(env)
    paths = huge_file_campaign(fs, "/huge", 3, file_size=200 * 10**9)
    assert len(paths) == 3
    assert fs.pool("p").used_bytes == 600 * 10**9
