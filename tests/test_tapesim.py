"""Tests for cartridges, drives and the tape library."""

import pytest

from repro.sim import Environment, SimulationError
from repro.tapesim import TapeCartridge, TapeDrive, TapeLibrary, TapeSpec


# ---------------------------------------------------------------------------
# cartridge
# ---------------------------------------------------------------------------

def test_cartridge_append_assigns_sequential_seq():
    cart = TapeCartridge("V1", capacity_bytes=1000)
    e1 = cart.append("o1", 100)
    e2 = cart.append("o2", 200)
    assert (e1.seq, e2.seq) == (1, 2)
    assert e2.start_byte == 100
    assert cart.eod == 300
    assert cart.extent_of("o2") is e2


def test_cartridge_overflow_rejected():
    cart = TapeCartridge("V1", capacity_bytes=100)
    cart.append("o1", 80)
    with pytest.raises(ValueError):
        cart.append("o2", 30)


def test_cartridge_remove_keeps_eod():
    """Deleting an object orphans its space — tape never reclaims in place."""
    cart = TapeCartridge("V1", capacity_bytes=1000)
    cart.append("o1", 100)
    cart.append("o2", 100)
    assert cart.remove("o1")
    assert not cart.remove("o1")
    assert cart.eod == 200
    assert cart.live_bytes == 100
    assert cart.utilization == pytest.approx(0.5)


def test_cartridge_read_only_blocks_append():
    cart = TapeCartridge("V1", capacity_bytes=1000)
    cart.read_only = True
    assert not cart.fits(10)


# ---------------------------------------------------------------------------
# drive
# ---------------------------------------------------------------------------

SPEC = TapeSpec(
    native_rate=100e6,
    load_time=10.0,
    unload_time=10.0,
    rewind_full=50.0,
    seek_base=1.0,
    locate_rate=1e9,
    label_verify=5.0,
    backhitch=2.0,
    capacity=1000e9,
)


def test_drive_load_then_write_timing():
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC)
    cart = TapeCartridge("V1", capacity_bytes=SPEC.capacity)

    def go():
        yield drv.load(cart)
        t_loaded = env.now
        ext = yield drv.write_object("nodeA", "obj1", 100_000_000)
        return t_loaded, ext

    t_loaded, ext = env.run(env.process(go()))
    assert t_loaded == pytest.approx(15.0)  # load 10 + label 5
    # write: backhitch 2 + 100MB at 100MB/s = 1s -> ends at 18
    assert env.now == pytest.approx(18.0)
    assert ext.seq == 1
    assert drv.backhitches == 1


def test_small_files_collapse_throughput():
    """Paper 6.1: one transaction per file makes 8 MB files ~25x slower."""
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC)
    cart = TapeCartridge("V1", capacity_bytes=SPEC.capacity)
    n, size = 50, 8_000_000

    def go():
        yield drv.load(cart)
        t0 = env.now
        for i in range(n):
            yield drv.write_object("nodeA", f"o{i}", size)
        return (n * size) / (env.now - t0)

    rate = env.run(env.process(go()))
    # 8 MB / (2s backhitch + 0.08s stream) ~ 3.85 MB/s
    assert rate == pytest.approx(8e6 / 2.08, rel=1e-3)
    assert rate < 5e6


def test_sequential_read_skips_locate():
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC)
    cart = TapeCartridge("V1", capacity_bytes=SPEC.capacity)

    def go():
        yield drv.load(cart)
        exts = []
        for i in range(3):
            e = yield drv.write_object("nodeA", f"o{i}", 10_000_000)
            exts.append(e)
        # rewind happens implicitly via locate to extent 0
        t0 = env.now
        for e in exts:
            yield drv.read_extent("nodeA", e)
        return env.now - t0, drv.seek_seconds

    dur, seek = env.run(env.process(go()))
    # one locate back to byte 0, then pure sequential streaming
    assert drv.position == 30_000_000
    # duration = locate(30MB->0) + 3 streams, no stops in between
    expected = (1.0 + 0.03) + 3 * 0.1
    assert dur == pytest.approx(expected, rel=1e-6)


def test_out_of_order_reads_pay_seeks():
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC)
    cart = TapeCartridge("V1", capacity_bytes=SPEC.capacity)

    def run_order(order):
        drv2 = TapeDrive(env, "dx", spec=SPEC)
        # fresh drive/cart per order
        c = TapeCartridge("VX", capacity_bytes=SPEC.capacity)
        yield drv2.load(c)
        exts = []
        for i in range(4):
            e = yield drv2.write_object("n", f"o{i}", 50_000_000)
            exts.append(e)
        t0 = env.now
        for idx in order:
            yield drv2.read_extent("n", exts[idx])
        return env.now - t0

    seq = env.run(env.process(run_order([0, 1, 2, 3])))
    rnd = env.run(env.process(run_order([2, 0, 3, 1])))
    assert rnd > seq


def test_client_handoff_rewind_penalty():
    """Paper 6.2: alternating client nodes rewinds + re-verifies the label."""
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC)
    cart = TapeCartridge("V1", capacity_bytes=SPEC.capacity)

    def go():
        yield drv.load(cart)
        yield drv.write_object("nodeA", "o1", 1_000_000)
        yield drv.write_object("nodeB", "o2", 1_000_000)  # handoff!
        yield drv.write_object("nodeB", "o3", 1_000_000)  # same node: free
        return drv.handoff_rewinds, drv.label_verifies

    rewinds, verifies = env.run(env.process(go()))
    assert rewinds == 1
    assert verifies == 2  # one at load + one at handoff


def test_handoff_penalty_can_be_disabled():
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC, handoff_penalty=False)
    cart = TapeCartridge("V1", capacity_bytes=SPEC.capacity)

    def go():
        yield drv.load(cart)
        yield drv.write_object("nodeA", "o1", 1_000_000)
        yield drv.write_object("nodeB", "o2", 1_000_000)
        return drv.handoff_rewinds

    assert env.run(env.process(go())) == 0


def test_write_without_cart_errors():
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC)
    ev = drv.write_object("n", "o", 10)
    with pytest.raises(SimulationError):
        env.run(ev)


def test_read_wrong_volume_errors():
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC)
    other = TapeCartridge("V9", capacity_bytes=SPEC.capacity)
    ext = other.append("o", 10)
    cart = TapeCartridge("V1", capacity_bytes=SPEC.capacity)

    def go():
        yield drv.load(cart)
        yield drv.read_extent("n", ext)

    with pytest.raises(SimulationError):
        env.run(env.process(go()))


def test_unload_rewinds_proportionally():
    env = Environment()
    drv = TapeDrive(env, "d0", spec=SPEC)
    cart = TapeCartridge("V1", capacity_bytes=SPEC.capacity)

    def go():
        yield drv.load(cart)
        yield drv.write_object("n", "o", 500e9)  # half the tape
        t0 = env.now
        yield drv.unload()
        return env.now - t0

    dur = env.run(env.process(go()))
    # rewind half of 50s + unload 10
    assert dur == pytest.approx(25.0 + 10.0)
    assert not drv.loaded


# ---------------------------------------------------------------------------
# library
# ---------------------------------------------------------------------------

def test_library_acquire_mounts_and_reuses():
    env = Environment()
    lib = TapeLibrary(env, n_drives=2, spec=SPEC, n_scratch=4, robot_exchange=5.0)
    cart = lib.select_output_volume(1000)

    def go():
        d1 = yield lib.acquire_drive(cart.volume)
        yield d1.write_object("n", "o1", 1000)
        lib.release_drive(d1)
        d2 = yield lib.acquire_drive(cart.volume)
        lib.release_drive(d2)
        return d1, d2

    d1, d2 = env.run(env.process(go()))
    assert d1 is d2  # lazy dismount: same mounted drive reused
    assert lib.total_mounts == 1
    assert lib.robot_moves == 1


def test_library_same_volume_serialized():
    """Two concurrent users of one volume share one physical cartridge."""
    env = Environment()
    lib = TapeLibrary(env, n_drives=4, spec=SPEC, n_scratch=4, robot_exchange=5.0)
    cart = lib.select_output_volume(1000)
    drives = []

    def user(tag):
        d = yield lib.acquire_drive(cart.volume)
        drives.append(d)
        yield d.write_object(tag, f"obj-{tag}", 1000)
        lib.release_drive(d)

    env.process(user("a"))
    env.process(user("b"))
    env.run()
    assert drives[0] is drives[1]
    assert lib.total_mounts == 1


def test_library_dismounts_stale_volume_when_needed():
    env = Environment()
    lib = TapeLibrary(env, n_drives=1, spec=SPEC, n_scratch=4, robot_exchange=5.0)
    v1 = lib.select_output_volume(10, collocation_group="g1")
    v2 = lib.select_output_volume(10, collocation_group="g2")
    assert v1.volume != v2.volume

    def go():
        d = yield lib.acquire_drive(v1.volume)
        lib.release_drive(d)
        d = yield lib.acquire_drive(v2.volume)
        lib.release_drive(d)

    env.process(go())
    env.run()
    assert lib.total_mounts == 2
    assert lib.drives[0].dismounts == 1
    assert lib.robot_moves == 3  # fetch v1, stow v1, fetch v2


def test_collocation_groups_fill_separate_volumes():
    env = Environment()
    lib = TapeLibrary(env, n_drives=1, spec=SPEC, n_scratch=10)
    a1 = lib.select_output_volume(100, collocation_group="projA")
    b1 = lib.select_output_volume(100, collocation_group="projB")
    a2 = lib.select_output_volume(100, collocation_group="projA")
    assert a1.volume == a2.volume
    assert a1.volume != b1.volume


def test_select_output_volume_rolls_to_scratch_when_full():
    env = Environment()
    spec = TapeSpec(capacity=1000)
    lib = TapeLibrary(env, n_drives=1, spec=spec, n_scratch=2)
    v1 = lib.select_output_volume(800)
    v1.append("o1", 800)
    v2 = lib.select_output_volume(800)
    assert v2.volume != v1.volume


def test_scratch_pool_auto_extends():
    env = Environment()
    spec = TapeSpec(capacity=1000)
    lib = TapeLibrary(env, n_drives=1, spec=spec, n_scratch=1)
    v1 = lib.select_output_volume(900)
    v1.append("a", 900)
    v2 = lib.select_output_volume(900)
    v2.append("b", 900)
    v3 = lib.select_output_volume(900)
    assert len({v1.volume, v2.volume, v3.volume}) == 3


def test_oversize_object_rejected():
    env = Environment()
    spec = TapeSpec(capacity=1000)
    lib = TapeLibrary(env, n_drives=1, spec=spec, n_scratch=1)
    with pytest.raises(SimulationError):
        lib.select_output_volume(5000)


def test_find_extent_inventory_scan():
    env = Environment()
    lib = TapeLibrary(env, n_drives=1, spec=SPEC, n_scratch=2)
    cart = lib.select_output_volume(10)
    ext = cart.append("needle", 10)
    assert lib.find_extent("needle") == ext
    assert lib.find_extent("ghost") is None


def test_parallel_drives_give_parallel_bandwidth():
    """Two drives move two objects in roughly the time of one (Figure 6)."""
    env = Environment()
    lib = TapeLibrary(env, n_drives=2, spec=SPEC, n_scratch=4, robot_exchange=5.0)
    v1 = lib.select_output_volume(10, collocation_group="a")
    v2 = lib.select_output_volume(10, collocation_group="b")
    ends = []

    def writer(vol, tag):
        d = yield lib.acquire_drive(vol)
        yield d.write_object(tag, f"obj-{tag}", 1_000_000_000)
        lib.release_drive(d)
        ends.append(env.now)

    env.process(writer(v1.volume, "a"))
    env.process(writer(v2.volume, "b"))
    env.run()
    # serial would be ~2x stream time; parallel within ~1 robot exchange
    stream = 1_000_000_000 / SPEC.native_rate
    assert max(ends) < 2 * stream + 40
