"""Tests + properties for the stripe layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs import StripeLayout


def test_single_array_gets_everything():
    lay = StripeLayout(1, block_size=100)
    sl = lay.slices(ino=7, offset=0, nbytes=1000)
    assert len(sl) == 1
    assert sl[0].nbytes == 1000


def test_even_spread_across_arrays():
    lay = StripeLayout(4, block_size=100)
    sl = lay.slices(ino=0, offset=0, nbytes=400)
    assert sorted(s.nbytes for s in sl) == [100, 100, 100, 100]


def test_ino_offsets_starting_array():
    lay = StripeLayout(4, block_size=100)
    sl0 = lay.slices(ino=0, offset=0, nbytes=100)
    sl1 = lay.slices(ino=1, offset=0, nbytes=100)
    assert sl0[0].array_index != sl1[0].array_index


def test_partial_first_block():
    lay = StripeLayout(2, block_size=100)
    sl = lay.slices(ino=0, offset=50, nbytes=100)
    # 50 bytes complete block 0, 50 bytes start block 1
    by_idx = {s.array_index: s.nbytes for s in sl}
    assert by_idx == {0: 50, 1: 50}


def test_small_file_single_slice():
    lay = StripeLayout(8, block_size=4 << 20)
    sl = lay.slices(ino=3, offset=0, nbytes=1000)
    assert len(sl) == 1
    assert sl[0].nbytes == 1000


def test_invalid_args():
    with pytest.raises(ValueError):
        StripeLayout(0)
    lay = StripeLayout(2)
    with pytest.raises(ValueError):
        lay.slices(1, -1, 10)


@given(
    n_arrays=st.integers(1, 16),
    block=st.integers(1, 1 << 20),
    ino=st.integers(0, 10_000),
    offset=st.integers(0, 1 << 22),
    nbytes=st.integers(0, 1 << 24),
)
@settings(max_examples=200, deadline=None)
def test_slices_conserve_bytes(n_arrays, block, ino, offset, nbytes):
    lay = StripeLayout(n_arrays, block)
    sl = lay.slices(ino, offset, nbytes)
    assert sum(s.nbytes for s in sl) == nbytes
    assert all(0 <= s.array_index < n_arrays for s in sl)
    assert len({s.array_index for s in sl}) == len(sl)  # one slice per array


@given(
    n_arrays=st.integers(2, 8),
    nblocks=st.integers(1, 64),
)
@settings(max_examples=100, deadline=None)
def test_block_aligned_balance(n_arrays, nblocks):
    """Full-block writes differ by at most one block between arrays."""
    block = 1024
    lay = StripeLayout(n_arrays, block)
    sl = lay.slices(0, 0, nblocks * block)
    counts = [s.nbytes // block for s in sl]
    assert max(counts) - min(counts) <= 1
