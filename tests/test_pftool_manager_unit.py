"""Unit tests for Manager planning logic (no full job run needed)."""

import pytest

from repro.disksim import DiskArray
from repro.mpisim import SimComm
from repro.pfs import GpfsFileSystem, PathError, StoragePool
from repro.pftool import PftoolConfig, RuntimeContext
from repro.pftool.manager import Manager
from repro.pftool.messages import CopyJob, FileSpec, TapeInfo
from repro.pftool.stats import JobStats
from repro.sim import Environment

GB = 1_000_000_000
MB = 1_000_000


def make_manager(env, cfg=None, src_root="/src", dst_root="/dst"):
    def fs(name):
        f = GpfsFileSystem(env, name, metadata_op_time=0.0)
        arr = DiskArray(env, f"{name}-a", capacity_bytes=1e15, bandwidth=1e9,
                        seek_time=0.0)
        f.add_pool(StoragePool("p", [arr]), default=True)
        return f

    src, dst = fs("src"), fs("dst")
    src.mkdir("/src", parents=True)
    ctx = RuntimeContext(src_fs=src, dst_fs=dst, nodes=["n0", "n1"])
    cfg = cfg or PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0)
    comm = SimComm(env, cfg.total_ranks)
    stats = JobStats()
    return Manager(env, comm, cfg, ctx, "copy", src_root, dst_root, stats,
                   env.event())


def test_map_dst_basic():
    env = Environment()
    m = make_manager(env)
    assert m.map_dst("/src/a/b.dat") == "/dst/a/b.dat"
    assert m.map_dst("/src") == "/dst/src"  # root maps to dst/basename


def test_map_dst_escape_rejected():
    env = Environment()
    m = make_manager(env)
    with pytest.raises(PathError):
        m.map_dst("/elsewhere/file")


def test_plan_small_files_batch():
    env = Environment()
    cfg = PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0,
                       copy_batch=3)
    m = make_manager(env, cfg)
    for i in range(7):
        m._plan_copy(FileSpec(f"/src/f{i}", 100, False, None, 0.0))
    # 7 files at batch 3 -> two full batches queued, one pending
    assert len(m.copy_q) == 2
    assert len(m.pending_small) == 1
    m._flush_small()
    assert len(m.copy_q) == 3


def test_plan_chunked_large_file():
    env = Environment()
    cfg = PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0,
                       chunk_threshold=4 * GB, copy_chunk_size=2 * GB)
    m = make_manager(env, cfg)
    m._plan_copy(FileSpec("/src/big", 10 * GB, False, None, 0.0))
    # first chunk queued with create; rest wait
    assert len(m.copy_q) == 1
    first = m.copy_q[0]
    assert isinstance(first, CopyJob)
    assert first.create
    assert first.length == 2 * GB
    assert len(m.waiting_chunks["/dst/big"]) == 4


def test_plan_migrated_file_buffers_for_tape():
    env = Environment()
    m = make_manager(env)
    m._plan_copy(FileSpec("/src/cold", 1 * MB, True, 42, 0.0))
    assert m.tape_buffer == [("/src/cold", 42, 1 * MB, "/dst/cold")]
    assert len(m.copy_q) == 0


def test_stat_phase_done_and_complete_transitions():
    env = Environment()
    m = make_manager(env)
    assert m._stat_phase_done()
    assert m._complete()
    m._plan_copy(FileSpec("/src/f", 100, False, None, 0.0))
    assert not m._complete()  # pending_small holds work
    m._flush_small()
    assert not m._complete()  # copy_q holds work
    m.copy_q.clear()
    assert m._complete()


def test_restart_skips_current_destination():
    env = Environment()
    cfg = PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0,
                       restart=True)
    m = make_manager(env, cfg)
    # destination exists, same size, newer mtime
    m.ctx.dst_fs.mkdir("/dst", parents=True)
    env.run(m.ctx.dst_fs.write_file("n0", "/dst/done", 500))
    m._plan_copy(FileSpec("/src/done", 500, False, None, mtime=-1.0))
    assert m.stats.files_skipped == 1
    assert len(m.copy_q) == 0
    # size mismatch -> recopied
    m._plan_copy(FileSpec("/src/done", 999, False, None, mtime=-1.0))
    m._flush_small()
    assert len(m.copy_q) == 1


def test_tape_info_orders_by_volume_and_seq():
    env = Environment()
    m = make_manager(env)
    from repro.tapedb import TapeLocation

    entries = [
        ("/src/a", 1, 10, "/dst/a"),
        ("/src/b", 2, 10, "/dst/b"),
        ("/src/c", 3, 10, "/dst/c"),
    ]
    locs = {
        "/src/a": TapeLocation(1, "/src/a", "fs", "V2", 5, 10),
        "/src/b": TapeLocation(2, "/src/b", "fs", "V1", 9, 10),
        "/src/c": TapeLocation(3, "/src/c", "fs", "V2", 1, 10),
    }
    m.pending_lookups = 1
    m._on_tape_info(TapeInfo(tuple(entries), locs))
    assert [j.volume for j in m.tape_q] == ["V1", "V2"]
    v2 = [j for j in m.tape_q if j.volume == "V2"][0]
    assert [e[2] for e in v2.entries] == [1, 5]  # ascending seq
    assert m.stats.tape_volumes_touched == 2


def test_tape_info_unordered_mode_keeps_arrival_order():
    env = Environment()
    cfg = PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0,
                       tape_ordering=False)
    m = make_manager(env, cfg)
    from repro.tapedb import TapeLocation

    entries = [("/src/a", 1, 10, "/dst/a"), ("/src/c", 3, 10, "/dst/c")]
    locs = {
        "/src/a": TapeLocation(1, "/src/a", "fs", "V2", 5, 10),
        "/src/c": TapeLocation(3, "/src/c", "fs", "V2", 1, 10),
    }
    m.pending_lookups = 1
    m._on_tape_info(TapeInfo(tuple(entries), locs))
    v2 = m.tape_q[0]
    assert [e[2] for e in v2.entries] == [5, 1]  # arrival order preserved


def test_tape_info_missing_location_counts_failure():
    env = Environment()
    m = make_manager(env)
    m.pending_lookups = 1
    m.ctx = m.ctx  # no tsm fallback configured
    m._on_tape_info(
        TapeInfo((("/src/ghost", 9, 10, "/dst/ghost"),), {"/src/ghost": None})
    )
    assert m.stats.files_failed == 1
    assert len(m.tape_q) == 0
