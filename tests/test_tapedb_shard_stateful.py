"""Stateful property testing of the sharded tape index against a model.

Hypothesis drives random upsert/remove/lookup sequences and checks the
sharded index agrees with a plain-dict model after every step — the
same treatment ``test_namespace_stateful.py`` gives the namespace.  The
model tracks the global upsert sequence explicitly, so the invariants
prove the ``gseq`` plumbing (recall-order ties, duplicate-path
last-write-wins across shards) rather than assuming it.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.sim import Environment
from repro.tapedb import ShardedTapeIndex, TapeIndexDB

OIDS = st.integers(1, 12)
VOLS = st.integers(0, 5)
SEQS = st.integers(0, 4)
PATHS = st.integers(0, 8)


class ShardedIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.db = ShardedTapeIndex(self.env, n_shards=3, cache_entries=4)
        #: model: oid -> (path, filespace, volume, seq, nbytes, gseq)
        self.model = {}
        self.gseq = 0

    # -- rules ---------------------------------------------------------
    @rule(oid=OIDS, v=VOLS, s=SEQS, p=PATHS)
    def upsert(self, oid, v, s, p):
        self.gseq += 1
        vol, path = f"V{v:02d}", f"/f{p:03d}"
        self.db.upsert(oid, path, "fs", vol, s, 10 * oid)
        self.model[oid] = (path, "fs", vol, s, 10 * oid, self.gseq)

    @rule(oid=OIDS)
    def remove(self, oid):
        assert self.db.remove(oid) == (oid in self.model)
        self.model.pop(oid, None)

    @rule(oid=OIDS)
    def lookup_by_oid(self, oid):
        loc = self.db.location_of(oid)
        if oid not in self.model:
            assert loc is None
        else:
            path, fs, vol, seq, nb, _ = self.model[oid]
            assert (loc.path, loc.filespace, loc.volume, loc.seq, loc.nbytes) == (
                path, fs, vol, seq, nb
            )

    @rule(p=PATHS)
    def lookup_by_path(self, p):
        path = f"/f{p:03d}"
        loc = self.db.object_for_path("fs", path)
        # last-write-wins: the matching row with the highest gseq
        want = max(
            (row for row in self.model.items() if row[1][0] == path),
            key=lambda kv: kv[1][5],
            default=None,
        )
        if want is None:
            assert loc is None
        else:
            assert loc.object_id == want[0]

    @rule(v=VOLS)
    def scan_volume(self, v):
        vol = f"V{v:02d}"
        got = [(loc.seq, loc.object_id) for loc in self.db.objects_on_volume(vol)]
        want = sorted(
            ((row[3], oid) for oid, row in self.model.items() if row[2] == vol),
            key=lambda t: t[0],
        )
        assert [seq for seq, _ in got] == [seq for seq, _ in want]
        assert {oid for _, oid in got} == {oid for _, oid in want}

    # -- invariants ----------------------------------------------------
    @invariant()
    def sizes_agree(self):
        assert len(self.db) == len(self.model)
        assert sum(self.db.shard_sizes()) == len(self.model)

    @invariant()
    def recall_order_matches_rebuilt_monolith(self):
        # replay the model into a fresh monolithic index in gseq order;
        # its flattened tape sort is the canonical recall order
        mono = TapeIndexDB(Environment())
        for oid, (path, fs, vol, seq, nb, _) in sorted(
            self.model.items(), key=lambda kv: kv[1][5]
        ):
            mono.upsert(oid, path, fs, vol, seq, nb)
        locs = [mono._row_to_loc(r) for r in mono.table.scan()]
        want = [
            loc.object_id
            for run in TapeIndexDB.sort_tape_order(locs).values()
            for loc in run
        ]
        got = [loc.object_id for loc in self.db.iter_recall_order(batch=2)]
        assert got == want


ShardedIndexMachine.TestCase.settings = settings(
    max_examples=50, stateful_step_count=25, deadline=None
)
TestShardedIndex = ShardedIndexMachine.TestCase
