"""End-to-end: very large file -> FUSE chunks -> tape -> reassembled.

The §4.1.2(4) promise in full: an enormous file is broken into chunks
that migrate to the back-end *in parallel as separate tape objects*, and
a later retrieve recalls the chunks and reassembles the original file on
scratch.
"""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pfs import HsmState
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.trace import tracing
from repro.trace.assertions import TraceAssertions
from repro.workloads import huge_file_campaign

GB = 1_000_000_000

SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def build(env):
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=4, n_disk_servers=2, n_tape_drives=4,
                      n_scratch_tapes=16, tape_spec=SPEC),
    )
    system.fuse.chunk_size = 2 * GB
    return system


def cfg():
    return PftoolConfig(
        num_workers=4, num_readdir=1, num_tapeprocs=4,
        fuse_threshold=6 * GB, chunk_threshold=4 * GB,
    )


def test_fuse_file_migrates_as_parallel_chunk_objects():
    env = Environment()
    system = build(env)
    huge_file_campaign(system.scratch_fs, "/huge", 1, 10 * GB)
    env.run(system.archive("/huge", "/a", cfg()).done)
    assert system.fuse.is_fuse_file("/a/huge000.h5")

    report = env.run(system.migrate_to_tape())
    assert report.files == 5  # 5 chunk files, NOT one 10 GB object
    # chunks went out in parallel streams -> several volumes touched
    vols = {
        system.tsm.locate(
            system.archive_fs.lookup(ref.path).tsm_object_id
        ).volume
        for ref in system.fuse.chunks("/a/huge000.h5")
    }
    assert len(vols) >= 2
    for ref in system.fuse.chunks("/a/huge000.h5"):
        assert system.archive_fs.lookup(ref.path).is_stub


def test_fuse_file_restores_and_reassembles():
    with tracing() as tracer:
        env = Environment()
        system = build(env)
        huge_file_campaign(system.scratch_fs, "/huge", 1, 10 * GB)
        src_token = system.scratch_fs.lookup("/huge/huge000.h5").content_token
        env.run(system.archive("/huge", "/a", cfg()).done)
        env.run(system.migrate_to_tape())

        stats = env.run(system.retrieve("/a", "/back", cfg()).done)
    assert stats.tape_files_restored == 5  # each chunk recalled
    assert stats.files_copied == 1  # ...into ONE reassembled file
    out = system.scratch_fs.lookup("/back/huge000.h5")
    assert out.size == 10 * GB
    assert out.content_token == src_token
    # trace: every chunk's tape store completed before any recall touched
    # its volume; per volume the recalls ran in tape order; the reassembly
    # chunk-copies tile the 10 GB file exactly; mounts stayed exclusive
    ta = TraceAssertions(tracer)
    assert ta.span_count("tsm:recall") == 5
    ta.happens_before("tsm:store", "tsm:recall", per="args:volume")
    ta.monotonic("tsm:recall", "seq", per="args:volume")
    ta.covers("copy:chunk", 10 * GB, per="args:dst")
    ta.no_overlap("drive:mounted", per="tid")


def test_fuse_restore_with_resident_chunks_mixed():
    """Some chunks still on disk, some on tape: only stubs hit tape."""
    env = Environment()
    system = build(env)
    huge_file_campaign(system.scratch_fs, "/huge", 1, 10 * GB)
    env.run(system.archive("/huge", "/a", cfg()).done)
    refs = system.fuse.chunks("/a/huge000.h5")
    # migrate only chunks 0, 2, 4
    env.run(system.migrate_to_tape(
        where=lambda p, i, now: p.endswith(("c0000", "c0002", "c0004"))
    ))
    migrated = [r for r in refs if system.archive_fs.lookup(r.path).is_stub]
    assert len(migrated) == 3

    stats = env.run(system.retrieve("/a", "/back", cfg()).done)
    assert stats.tape_files_restored == 3
    assert stats.files_copied == 1
    assert system.scratch_fs.lookup("/back/huge000.h5").size == 10 * GB
