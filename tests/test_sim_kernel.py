"""Unit tests for the DES kernel (events, processes, interrupts, run modes)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5.0)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5.0, 7.5]


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        v = yield env.timeout(1.0, value="hello")
        return v

    p = env.process(proc())
    assert env.run(p) == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return 42

    def parent():
        result = yield env.process(child())
        return result * 2

    p = env.process(parent())
    assert env.run(p) == 84
    assert env.now == 3


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    seen = []

    def waiter():
        val = yield ev
        seen.append((env.now, val))

    def trigger():
        yield env.timeout(4)
        ev.succeed("done")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert seen == [(4.0, "done")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        with pytest.raises(ValueError):
            yield ev
        return "caught"

    def trigger():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(trigger())
    assert env.run(p) == "caught"


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_unhandled_process_exception_surfaces_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_run_until_time_stops_early():
    env = Environment()
    hits = []

    def ticker():
        while True:
            yield env.timeout(1)
            hits.append(env.now)

    env.process(ticker())
    env.run(until=5)
    assert hits == [1, 2, 3, 4, 5]
    assert env.now == 5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as itr:
            causes.append((env.now, itr.cause))

    def attacker(v):
        yield env.timeout(3)
        v.interrupt("preempted")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert causes == [(3.0, "preempted")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_rewait_original_event():
    """After an interrupt, the process may resume waiting on the same event."""
    env = Environment()

    def victim():
        t = env.timeout(10)
        try:
            yield t
        except Interrupt:
            pass
        yield t  # keep waiting for the original deadline
        return env.now

    def attacker(v):
        yield env.timeout(2)
        v.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(v) == 10


def test_all_of_collects_values():
    env = Environment()

    def proc():
        t1 = env.timeout(1, "a")
        t2 = env.timeout(2, "b")
        res = yield AllOf(env, [t1, t2])
        return sorted(res.values())

    p = env.process(proc())
    assert env.run(p) == ["a", "b"]
    assert env.now == 2


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1, "fast")
        t2 = env.timeout(50, "slow")
        res = yield AnyOf(env, [t1, t2])
        return list(res.values())

    p = env.process(proc())
    assert env.run(p) == ["fast"]
    assert env.now == 1


def test_and_or_operators():
    env = Environment()

    def proc():
        both = yield env.timeout(1) & env.timeout(2)
        assert len(both) == 2
        one = yield env.timeout(1) | env.timeout(99)
        assert len(one) == 1
        return env.now

    p = env.process(proc())
    assert env.run(p) == 3  # AllOf fires at t=2, AnyOf 1s later


def test_deterministic_tie_break_order():
    """Events at the same time run in scheduling order."""
    env = Environment()
    order = []

    def make(tag):
        def proc():
            yield env.timeout(1)
            order.append(tag)

        return proc

    for tag in ("a", "b", "c", "d"):
        env.process(make(tag)())
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_yield_non_event_errors():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_run_until_event_value():
    env = Environment()
    ev = env.event()

    def setter():
        yield env.timeout(7)
        ev.succeed("finished")

    env.process(setter())
    assert env.run(until=ev) == "finished"
    assert env.now == 7


def _noop(env):
    yield env.timeout(3)


def test_peek_reports_next_event_time():
    env = Environment()
    env.process(_noop(env))
    env.step()  # init event
    assert env.peek() == 3.0
    env.run()
    assert env.peek() == float("inf")


# ----------------------------------------------------------- schedule policy
def _tagged_race(env, order):
    """Four processes waking at the same instant, recording their tags."""

    def make(tag):
        def proc():
            yield env.timeout(1)
            order.append(tag)

        return proc

    for tag in ("a", "b", "c", "d"):
        env.process(make(tag)(), name=tag)


def test_random_tiebreak_policy_permutes_same_instant_events():
    from repro.sim import RandomTiebreakPolicy

    orders = set()
    for seed in range(8):
        env = Environment(schedule_policy=RandomTiebreakPolicy(seed))
        order = []
        _tagged_race(env, order)
        env.run()
        assert sorted(order) == ["a", "b", "c", "d"]  # all still run
        orders.add(tuple(order))
    assert len(orders) > 1  # at least one seed deviates from FIFO


def test_random_tiebreak_policy_is_seed_deterministic():
    from repro.sim import RandomTiebreakPolicy

    runs = []
    for _ in range(2):
        env = Environment(schedule_policy=RandomTiebreakPolicy(1234))
        order = []
        _tagged_race(env, order)
        env.run()
        runs.append(order)
    assert runs[0] == runs[1]


def test_set_default_schedule_policy_installs_on_new_envs():
    from repro.sim import RandomTiebreakPolicy, set_default_schedule_policy

    def run_once():
        env = Environment()
        order = []
        _tagged_race(env, order)
        env.run()
        return order

    fifo = run_once()
    set_default_schedule_policy(lambda: RandomTiebreakPolicy(7))
    try:
        permuted = run_once()
        repeated = run_once()
    finally:
        set_default_schedule_policy(None)
    assert sorted(permuted) == sorted(fifo)
    assert permuted == repeated  # each new env gets the same seeded policy
    assert run_once() == fifo  # cleared: back to FIFO


def test_daemon_flag_marks_service_processes():
    env = Environment()

    def loop():
        yield env.timeout(1)

    worker = env.process(loop(), name="w")
    service = env.process(loop(), name="s", daemon=True)
    assert worker.daemon is False
    assert service.daemon is True
    env.run()
