"""Tests for the GPFS facade: data path, pools, policy, HSM hooks."""

import pytest

from repro.disksim import DiskArray
from repro.netsim import Fabric
from repro.pfs import (
    GpfsFileSystem,
    HsmState,
    ListRule,
    MigrateRule,
    PlacementRule,
    StoragePool,
)
from repro.sim import Environment, SimulationError


def make_fs(env, n_arrays=2, bw=100e6, fabric=None, servers=None, meta=0.0):
    fs = GpfsFileSystem(env, "gpfs", fabric=fabric, metadata_op_time=meta)
    arrays = [
        DiskArray(env, f"arr{i}", capacity_bytes=1e12, bandwidth=bw, seek_time=0.0)
        for i in range(n_arrays)
    ]
    fs.add_pool(StoragePool("fast", arrays, server_nodes=servers), default=True)
    return fs


def test_write_then_read_roundtrip():
    env = Environment()
    fs = make_fs(env)

    def go():
        inode = yield fs.write_file("client", "/f", 100_000_000)
        got, token = yield fs.read_file("client", "/f")
        return inode, got, token

    inode, got, token = env.run(env.process(go()))
    assert got is inode
    assert inode.size == 100_000_000
    assert token == inode.content_token
    assert fs.bytes_written == 100_000_000
    assert fs.bytes_read == 100_000_000


def test_striping_uses_parallel_arrays():
    """A large write across 2 arrays takes about half the 1-array time."""
    env1 = Environment()
    fs1 = make_fs(env1, n_arrays=1)
    env1.run(fs1.write_file("c", "/f", 400 << 20))
    t1 = env1.now

    env2 = Environment()
    fs2 = make_fs(env2, n_arrays=2)
    env2.run(fs2.write_file("c", "/f", 400 << 20))
    t2 = env2.now
    assert t2 == pytest.approx(t1 / 2, rel=0.01)


def test_fabric_hop_charged_in_parallel_with_disk():
    env = Environment()
    fab = Fabric(env)
    fab.add_link("client", "server0", capacity=50e6)  # slower than disk
    fs = GpfsFileSystem(env, "gpfs", fabric=fab, metadata_op_time=0.0)
    arr = DiskArray(env, "a", capacity_bytes=1e12, bandwidth=100e6, seek_time=0.0)
    fs.add_pool(StoragePool("fast", [arr], server_nodes=["server0"]), default=True)
    env.run(fs.write_file("client", "/f", 100e6))
    # network is the bottleneck: 100MB at 50MB/s = 2s
    assert env.now == pytest.approx(2.0, rel=1e-6)


def test_write_allocates_and_unlink_frees():
    env = Environment()
    fs = make_fs(env)
    env.run(fs.write_file("c", "/f", 1000))
    pool = fs.pool("fast")
    assert pool.used_bytes == 1000
    env.run(fs.unlink_op("/f"))
    assert pool.used_bytes == 0


def test_overwrite_frees_old_allocation():
    env = Environment()
    fs = make_fs(env)
    env.run(fs.write_file("c", "/f", 1000))
    env.run(fs.write_file("c", "/f", 500))
    assert fs.pool("fast").used_bytes == 500


def test_placement_rule_routes_small_files():
    env = Environment()
    fs = make_fs(env)
    slow = DiskArray(env, "slow0", capacity_bytes=1e12, bandwidth=50e6, seek_time=0.0)
    fs.add_pool(StoragePool("slow", [slow]))
    fs.policy.add_placement(
        PlacementRule("small-to-slow", "slow", lambda p, i, now: i.size < 1000)
    )
    # placement sees size at create time (0), so all new files match unless
    # a pool is forced; the paper places small files on the slow pool.
    env.run(fs.write_file("c", "/small", 100))
    env.run(fs.write_file("c", "/big", 10_000, pool="fast"))
    assert fs.lookup("/small").pool == "slow"
    assert fs.lookup("/big").pool == "fast"


def test_read_missing_file_fails():
    env = Environment()
    fs = make_fs(env)
    with pytest.raises(Exception):
        env.run(fs.read_file("c", "/ghost"))


def test_stub_read_triggers_recall_handler():
    env = Environment()
    fs = make_fs(env)
    recalled = []

    def handler(path, inode, client):
        ev = env.event()

        def _go():
            yield env.timeout(30.0)  # tape recall time
            fs.restore_data(path)
            recalled.append(path)
            ev.succeed(None)

        env.process(_go())
        return ev

    fs.recall_handler = handler

    def go():
        yield fs.write_file("c", "/f", 1000)
        fs.mark_premigrated("/f", tsm_object_id=99)
        fs.punch_stub("/f")
        assert fs.lookup("/f").is_stub
        assert fs.pool("fast").used_bytes == 0
        t0 = env.now
        yield fs.read_file("c", "/f")
        return env.now - t0

    dur = env.run(env.process(go()))
    assert recalled == ["/f"]
    assert dur >= 30.0
    assert fs.lookup("/f").hsm_state is HsmState.PREMIGRATED
    assert fs.recalls_triggered == 1


def test_stub_read_without_handler_fails():
    env = Environment()
    fs = make_fs(env)

    def go():
        yield fs.write_file("c", "/f", 10)
        fs.mark_premigrated("/f", 1)
        fs.punch_stub("/f")
        yield fs.read_file("c", "/f")

    with pytest.raises(SimulationError, match="recall"):
        env.run(env.process(go()))


def test_punch_without_tape_copy_refused():
    env = Environment()
    fs = make_fs(env)
    env.run(fs.write_file("c", "/f", 10))
    with pytest.raises(SimulationError, match="no tape copy"):
        fs.punch_stub("/f")


def test_overwrite_of_migrated_file_notifies_observers():
    """The §6.3 truncate/overwrite orphan: observers get the stale id."""
    env = Environment()
    fs = make_fs(env)
    orphans = []
    fs.on_overwrite.append(lambda p, i, stale: orphans.append((p, stale)))

    def go():
        yield fs.write_file("c", "/f", 10)
        fs.mark_premigrated("/f", tsm_object_id=42)
        yield fs.write_file("c", "/f", 20)

    env.run(env.process(go()))
    assert orphans == [("/f", 42)]
    assert fs.lookup("/f").tsm_object_id is None


def test_unlink_notifies_observers():
    env = Environment()
    fs = make_fs(env)
    seen = []
    fs.on_unlink.append(lambda p, i: seen.append((p, i.ino)))
    env.run(fs.write_file("c", "/f", 10))
    ino = fs.lookup("/f").ino
    env.run(fs.unlink_op("/f"))
    assert seen == [("/f", ino)]


def test_copy_token_propagation():
    env = Environment()
    fs = make_fs(env)

    def go():
        src = yield fs.write_file("c", "/src", 100)
        _, token = yield fs.read_file("c", "/src")
        dst = yield fs.write_file("c", "/dst", 100, token=token)
        return src, dst

    src, dst = env.run(env.process(go()))
    assert src.content_token == dst.content_token


def test_metadata_op_time_charged():
    env = Environment()
    fs = make_fs(env, meta=0.001)
    env.run(fs.stat_op("/"))
    assert env.now == pytest.approx(0.001)


def test_policy_scan_charges_time_and_lists():
    env = Environment()
    fs = make_fs(env)
    fs.policy.scan_rate = 100.0  # 100 inodes/s for the test

    def go():
        for i in range(5):
            yield fs.write_file("c", f"/f{i}", 10 * (i + 1))
        res = yield fs.policy.apply(
            [ListRule("r", "big", lambda p, i, now: i.size >= 30)]
        )
        return res

    res = env.run(env.process(go()))
    assert [h.path for h in res.lists["big"]] == ["/f2", "/f3", "/f4"]
    assert res.scanned == 6  # 5 files + root
    assert res.duration == pytest.approx(6 / 100.0)


def test_migrate_rule_threshold_selection():
    env = Environment()
    fs = make_fs(env, n_arrays=1)
    # shrink the pool so occupancy maths are simple
    arr = fs.pool("fast").arrays[0]
    arr.capacity_bytes = 1000.0

    def go():
        yield fs.write_file("c", "/a", 400)
        yield fs.write_file("c", "/b", 300)
        yield fs.write_file("c", "/c", 200)  # 90% full
        rule = MigrateRule(
            "mig",
            from_pool="fast",
            to_pool="tape",
            threshold_high=80.0,
            threshold_low=40.0,
            weight=lambda p, i, now: i.size,  # biggest first
        )
        res = yield fs.policy.apply(
            [rule],
            pool_occupancy=fs.pool_occupancy,
            pool_capacity=fs.pool_capacity,
        )
        return res

    res = env.run(env.process(go()))
    chosen = [h.path for h in res.migrations["mig"]]
    # need to free 900-400=500 bytes: picks /a (400) then /b (300)
    assert chosen == ["/a", "/b"]


def test_migrate_rule_below_threshold_selects_nothing():
    env = Environment()
    fs = make_fs(env, n_arrays=1)
    fs.pool("fast").arrays[0].capacity_bytes = 10_000.0

    def go():
        yield fs.write_file("c", "/a", 400)
        rule = MigrateRule(
            "mig", "fast", "tape", threshold_high=80.0, threshold_low=40.0
        )
        return (
            yield fs.policy.apply(
                [rule],
                pool_occupancy=fs.pool_occupancy,
                pool_capacity=fs.pool_capacity,
            )
        )

    res = env.run(env.process(go()))
    assert res.migrations["mig"] == []
