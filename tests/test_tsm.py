"""Tests for the TSM server: stores, retrieves, aggregation, LAN-free."""

import pytest

from repro.netsim import Fabric
from repro.sim import Environment
from repro.tapedb import TapeIndexDB, TsmDbExporter
from repro.tapesim import TapeLibrary, TapeSpec
from repro.tsm import TsmServer

SPEC = TapeSpec(
    native_rate=100e6,
    load_time=10.0,
    unload_time=10.0,
    rewind_full=50.0,
    seek_base=1.0,
    locate_rate=1e9,
    label_verify=5.0,
    backhitch=2.0,
    capacity=1000e9,
)


def make_tsm(env, n_drives=2, fabric=None, ports=None, server_node=None):
    lib = TapeLibrary(
        env, n_drives=n_drives, spec=SPEC, n_scratch=8, robot_exchange=5.0,
        fabric=fabric, drive_ports=ports,
    )
    return TsmServer(env, lib, server_node=server_node, txn_time=0.005)


def test_store_and_locate():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")
    receipts = env.run(sess.store("fs", "/f", 100_000_000))
    assert len(receipts) == 1
    r = receipts[0]
    obj = tsm.locate(r.object_id)
    assert obj.path == "/f"
    assert obj.volume == r.volume
    assert tsm.bytes_stored == 100_000_000


def test_store_many_holds_one_drive():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")
    items = [(f"/f{i}", 1_000_000) for i in range(10)]
    receipts = env.run(sess.store_many("fs", items))
    assert len(receipts) == 10
    assert tsm.library.total_mounts == 1
    # all on the same volume, ascending seq
    seqs = [r.seq for r in receipts]
    assert seqs == sorted(seqs)
    assert len({r.volume for r in receipts}) == 1


def test_store_rolls_to_next_volume_when_full():
    env = Environment()
    spec = TapeSpec(
        native_rate=100e6, load_time=1, unload_time=1, rewind_full=1,
        seek_base=0.1, locate_rate=1e9, label_verify=1, backhitch=0.1,
        capacity=1000,
    )
    lib = TapeLibrary(env, n_drives=1, spec=spec, n_scratch=4, robot_exchange=1.0)
    tsm = TsmServer(env, lib)
    sess = tsm.open_session("fta0")
    receipts = env.run(sess.store_many("fs", [("/a", 600), ("/b", 600)]))
    assert len({r.volume for r in receipts}) == 2
    assert lib.total_mounts == 2


def test_retrieve_returns_data_in_given_order():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")

    def go():
        receipts = yield sess.store_many(
            "fs", [(f"/f{i}", 10_000_000) for i in range(4)]
        )
        ids = [r.object_id for r in receipts]
        out = yield sess.retrieve_many(ids)
        return receipts, out

    receipts, out = env.run(env.process(go()))
    assert [o.object_id for o in out] == [r.object_id for r in receipts]
    assert tsm.bytes_retrieved == 40_000_000


def test_retrieve_unknown_object_raises():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")
    with pytest.raises(Exception):
        env.run(sess.retrieve(999))


def test_aggregate_store_single_transaction_single_backhitch():
    """Aggregation: N small files, one tape object, one backhitch."""
    env = Environment()
    tsm = make_tsm(env, n_drives=1)
    sess = tsm.open_session("fta0")
    items = [(f"/small{i}", 8_000_000) for i in range(20)]
    receipts = env.run(sess.store_aggregate("fs", items))
    assert len(receipts) == 20
    drv = tsm.library.drives[0]
    assert drv.backhitches == 1
    # every member shares the aggregate's (volume, seq)
    assert len({(r.volume, r.seq) for r in receipts}) == 1
    assert {r.aggregate_id for r in receipts} != {None}
    # offsets tile the aggregate
    offs = sorted(r.offset for r in receipts)
    assert offs == [8_000_000 * i for i in range(20)]


def test_aggregate_vs_per_file_speedup():
    """The §6.1 experiment in miniature: aggregation ~25x faster."""
    env = Environment()
    tsm = make_tsm(env, n_drives=2)
    s = tsm.open_session("fta0")
    items = [(f"/s{i}", 8_000_000) for i in range(50)]

    def timed(ev_factory):
        t0 = env.now
        def _go():
            yield ev_factory()
            return env.now - t0
        return env.process(_go())

    d1 = env.run(timed(lambda: s.store_many("fs", items)))
    items2 = [(f"/t{i}", 8_000_000) for i in range(50)]
    t0 = env.now

    def _go2():
        yield s.store_aggregate("fs", items2)
        return env.now - t0

    d2 = env.run(env.process(_go2()))
    assert d1 / d2 > 5  # per-file pays 50 backhitches; aggregate pays 1


def test_member_retrieve_from_aggregate():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")

    def go():
        receipts = yield sess.store_aggregate(
            "fs", [("/a", 1_000_000), ("/b", 2_000_000)]
        )
        out = yield sess.retrieve(receipts[1].object_id)
        return out

    out = env.run(env.process(go()))
    assert out[0].path == "/b"
    assert tsm.bytes_retrieved == 2_000_000


def test_delete_object_removes_extent():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")

    def go():
        receipts = yield sess.store("fs", "/f", 1_000_000)
        r = receipts[0]
        ok = yield tsm.delete_object(r.object_id)
        return r, ok

    r, ok = env.run(env.process(go()))
    assert ok
    assert tsm.locate(r.object_id) is None
    cart = tsm.library.cartridges[r.volume]
    assert cart.extent_of(r.object_id) is None
    assert cart.eod > 0  # space NOT reclaimed (tape semantics)


def test_lan_free_vs_lan_paths():
    """LAN sessions funnel through the server NIC; LAN-free do not."""
    def build(lan_free):
        env = Environment()
        fab = Fabric(env)
        # client -- LAN(50 MB/s) -- server ; client/server -- SAN -- drive
        fab.add_link("client", "server", capacity=50e6)
        fab.add_link("client", "san", capacity=400e6)
        fab.add_link("server", "san", capacity=400e6)
        fab.add_link("san", "port0", capacity=400e6)
        fab.add_link("san", "port1", capacity=400e6)
        lib = TapeLibrary(
            env, n_drives=2, spec=SPEC, n_scratch=4, robot_exchange=5.0,
            fabric=fab, drive_ports=["port0", "port1"],
        )
        tsm = TsmServer(env, lib, server_node="server")
        sess = tsm.open_session("client", lan_free=lan_free)
        env.run(sess.store("fs", "/f", 500_000_000))
        return env.now

    t_lanfree = build(True)
    t_lan = build(False)
    # LAN path is limited by the 50 MB/s client->server link (10s relay,
    # overlapped with the 2+5s drive write) vs 7s total for LAN-free.
    assert t_lan - t_lanfree == pytest.approx(3.0, abs=0.1)


def test_objects_for_path_and_export():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")
    env.run(sess.store("fs", "/f", 1000))
    objs = tsm.objects_for_path("fs", "/f")
    assert len(objs) == 1
    rows = list(tsm.export_rows())
    assert rows[0]["path"] == "/f"
    assert rows[0]["volume"] == objs[0].volume


def test_exporter_populates_index_db():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")
    db = TapeIndexDB(env)
    exporter = TsmDbExporter(env, tsm, db)

    def go():
        yield sess.store_many("fs", [("/a", 1000), ("/b", 2000)])
        n = yield exporter.run_once()
        return n

    n = env.run(env.process(go()))
    assert n == 2
    assert db.object_for_path("fs", "/a") is not None
    assert db.object_for_path("fs", "/b").nbytes == 2000


def test_empty_store_batch():
    env = Environment()
    tsm = make_tsm(env)
    sess = tsm.open_session("fta0")
    assert env.run(sess.store_many("fs", [])) == []
    assert env.run(sess.store_aggregate("fs", [])) == []
