"""Golden tests for the pfls / pfcp / pfcm command-line tools.

Each test runs a CLI main() on a small seeded workload and compares the
*normalized* output against a committed golden string: timing numbers
(simulated durations and derived rates) are replaced with placeholders
so the goldens pin structure, counts, paths and exit codes without
repeating the perf goldens' job (BENCH_kernel.json owns exact simulated
times).  A CLI regression — changed summary wording, wrong counts,
nonzero exit, stderr noise — fails loudly here.
"""

import re

import pytest

from repro.cli import pfcm, pfcp, pfls

TIME_RE = re.compile(r"\b\d+(?:\.\d+)?s\b")
RATE_RE = re.compile(r"\(\d+(?:\.\d+)? MB/s\)")


def normalize(text: str) -> str:
    """Blank out wall/rate numbers that depend on simulated timing."""
    text = TIME_RE.sub("<T>", text)
    text = RATE_RE.sub("(<RATE> MB/s)", text)
    return text.rstrip("\n")


def run_cli(main, argv, capsys):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


ARGS = ["--files", "4", "--size", "2MB", "--workers", "4", "--fta", "4",
        "--drives", "4", "--seed", "7"]


def test_pfls_golden(capsys):
    rc, out, err = run_cli(pfls.main, ARGS, capsys)
    assert rc == 0
    assert err == ""
    assert normalize(out) == (
        "/archive/data/run0000/f0000000\t1544514\tresident\n"
        "/archive/data/run0000/f0000001\t4393236\tresident\n"
        "/archive/data/run0000/f0000002\t1334369\tresident\n"
        "/archive/data/run0000/f0000003\t727879\tresident\n"
        "... 4 files listed in <T> (simulated)"
    )


def test_pfcp_golden(capsys):
    rc, out, err = run_cli(pfcp.main, ARGS, capsys)
    assert rc == 0
    assert err == ""
    assert normalize(out) == (
        "pftool copy: 4 files, 8.0 MB in <T> (<RATE> MB/s)\n"
        "  dirs=2 seen=4 skipped=0 failed=0"
    )


def test_pfcm_golden_clean(capsys):
    rc, out, err = run_cli(pfcm.main, ARGS, capsys)
    assert rc == 0
    assert err == ""
    assert normalize(out) == (
        "compared 4 files in <T> (simulated): 0 mismatches"
    )


def test_pfcp_migrate_golden(capsys):
    rc, out, err = run_cli(pfcp.main, ARGS + ["--migrate"], capsys)
    assert rc == 0
    assert err == ""
    lines = normalize(out).splitlines()
    assert lines[0] == "pftool copy: 4 files, 8.0 MB in <T> (<RATE> MB/s)"
    assert re.fullmatch(
        r"migrated 4 files / 0\.0 GB to tape in <T> "
        r"\(skew <T> across \d+ nodes\)",
        lines[-1],
    ), lines[-1]


def test_cli_goldens_are_deterministic(capsys):
    """Same seed, same bytes — twice through each tool."""
    for main in (pfls.main, pfcp.main, pfcm.main):
        rc1, out1, _ = run_cli(main, ARGS, capsys)
        rc2, out2, _ = run_cli(main, ARGS, capsys)
        assert (rc1, out1) == (rc2, out2)


def test_pfcp_different_seed_changes_listing(capsys):
    _, out1, _ = run_cli(pfls.main, ARGS, capsys)
    _, out2, _ = run_cli(pfls.main, ARGS[:-1] + ["8"], capsys)
    assert out1 != out2
