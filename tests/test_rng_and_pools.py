"""Tests for seeded RNG streams and storage pool bookkeeping."""

import pytest

from repro.disksim import DiskArray
from repro.pfs import ExternalPool, StoragePool
from repro.sim import Environment, RandomStreams, SimulationError


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------

def test_same_seed_same_stream():
    a = RandomStreams(42).stream("workload")
    b = RandomStreams(42).stream("workload")
    assert list(a.integers(0, 100, 10)) == list(b.integers(0, 100, 10))


def test_different_names_independent():
    rs = RandomStreams(42)
    a = list(rs.stream("alpha").integers(0, 1000, 20))
    b = list(rs.stream("beta").integers(0, 1000, 20))
    assert a != b


def test_stream_is_cached_not_restarted():
    rs = RandomStreams(1)
    first = rs.stream("x").integers(0, 10**9)
    second = rs.stream("x").integers(0, 10**9)
    # same generator object advancing, not a fresh stream each call
    assert rs.stream("x") is rs.stream("x")
    assert (first, second) != (first, first) or first != second


def test_adding_streams_does_not_perturb_others():
    """The common-random-numbers discipline: draws from stream A are the
    same whether or not stream B was ever created."""
    rs1 = RandomStreams(7)
    a_only = list(rs1.stream("a").integers(0, 10**6, 10))
    rs2 = RandomStreams(7)
    rs2.stream("b").integers(0, 10**6, 10)  # interloper
    a_with_b = list(rs2.stream("a").integers(0, 10**6, 10))
    assert a_only == a_with_b


def test_spawn_children_differ_from_parent_and_each_other():
    rs = RandomStreams(5)
    c1 = rs.spawn("node1")
    c2 = rs.spawn("node2")
    assert c1.master_seed != c2.master_seed != rs.master_seed
    v1 = c1.stream("s").integers(0, 10**9)
    v2 = c2.stream("s").integers(0, 10**9)
    assert v1 != v2
    # deterministic
    assert RandomStreams(5).spawn("node1").master_seed == c1.master_seed


# ---------------------------------------------------------------------------
# storage pools
# ---------------------------------------------------------------------------

def _arrays(env, n=2, cap=1000.0):
    return [
        DiskArray(env, f"a{i}", capacity_bytes=cap, bandwidth=1e6, seek_time=0)
        for i in range(n)
    ]


def test_pool_capacity_and_occupancy_aggregate():
    env = Environment()
    arrays = _arrays(env, 2, cap=1000.0)
    pool = StoragePool("p", arrays)
    assert pool.capacity_bytes == 2000.0
    assert pool.occupancy == 0.0
    arrays[0].allocate(500)
    assert pool.used_bytes == 500
    assert pool.free_bytes == 1500
    assert pool.occupancy == pytest.approx(0.25)


def test_pool_requires_arrays():
    with pytest.raises(SimulationError):
        StoragePool("empty", [])


def test_pool_server_nodes_must_match():
    env = Environment()
    with pytest.raises(SimulationError):
        StoragePool("p", _arrays(env, 2), server_nodes=["only-one"])


def test_pool_server_of():
    env = Environment()
    pool = StoragePool("p", _arrays(env, 2), server_nodes=["ds0", "ds1"])
    assert pool.server_of(1) == "ds1"
    bare = StoragePool("q", _arrays(env, 1))
    assert bare.server_of(0) is None


def test_external_pool_flag():
    ext = ExternalPool("hsm")
    assert ext.is_external
    env = Environment()
    assert not StoragePool("p", _arrays(env, 1)).is_external
