"""Integration tests for the flow-based fabric simulation."""

import pytest

from repro.netsim import Fabric, build_archive_site
from repro.netsim.topology import MB, TEN_GIGE
from repro.sim import Environment


def _simple_fabric(env, cap=100.0):
    fab = Fabric(env)
    fab.add_link("a", "b", capacity=cap)
    return fab


def test_single_transfer_duration():
    env = Environment()
    fab = _simple_fabric(env, cap=100.0)
    done = fab.transfer("a", "b", 1000.0)
    res = env.run(done)
    assert res.duration == pytest.approx(10.0)
    assert res.rate == pytest.approx(100.0)


def test_two_transfers_share_then_speed_up():
    """Second flow finishes after the first; first finishing frees capacity."""
    env = Environment()
    fab = _simple_fabric(env, cap=100.0)
    r1 = {}
    r2 = {}

    def go():
        d1 = fab.transfer("a", "b", 1000.0)
        d2 = fab.transfer("a", "b", 2000.0)
        r1["res"] = yield d1
        r2["res"] = yield d2

    env.process(go())
    env.run()
    # both at 50 B/s until t=20 when flow1 (1000B) finishes;
    # flow2 then has 1000B left at 100 B/s -> finishes at t=30.
    assert r1["res"].end == pytest.approx(20.0)
    assert r2["res"].end == pytest.approx(30.0)


def test_staggered_arrival_slows_existing_flow():
    env = Environment()
    fab = _simple_fabric(env, cap=100.0)
    ends = {}

    def first():
        res = yield fab.transfer("a", "b", 1000.0)
        ends["first"] = res.end

    def second():
        yield env.timeout(5.0)
        res = yield fab.transfer("a", "b", 1000.0)
        ends["second"] = res.end

    env.process(first())
    env.process(second())
    env.run()
    # first: 500B alone by t=5, then shares 50/50: 500B at 50B/s -> t=15
    assert ends["first"] == pytest.approx(15.0)
    # second: 500B done at t=15, remaining 500B at 100 B/s -> t=20
    assert ends["second"] == pytest.approx(20.0)


def test_multihop_route_bottleneck():
    env = Environment()
    fab = Fabric(env)
    fab.add_link("a", "m", capacity=100.0)
    fab.add_link("m", "b", capacity=10.0)
    res = env.run(fab.transfer("a", "b", 100.0))
    assert res.duration == pytest.approx(10.0)


def test_rate_cap_applies():
    env = Environment()
    fab = _simple_fabric(env, cap=100.0)
    res = env.run(fab.transfer("a", "b", 100.0, rate_cap=20.0))
    assert res.duration == pytest.approx(5.0)


def test_zero_byte_transfer_completes():
    env = Environment()
    fab = _simple_fabric(env)
    res = env.run(fab.transfer("a", "b", 0))
    assert res.nbytes == 0
    assert res.duration == pytest.approx(0.0)


def test_latency_added_once():
    env = Environment()
    fab = Fabric(env)
    fab.add_link("a", "b", capacity=100.0, latency=2.0)
    res = env.run(fab.transfer("a", "b", 100.0))
    assert res.end == pytest.approx(3.0)  # 2s latency + 1s at 100B/s


def test_no_route_raises():
    env = Environment()
    fab = Fabric(env)
    fab.add_node("a")
    fab.add_node("z")
    with pytest.raises(ValueError, match="no route"):
        fab.transfer("a", "z", 10)


def test_duplex_reverse_independent():
    """Duplex links carry opposing flows without sharing."""
    env = Environment()
    fab = Fabric(env)
    fab.add_link("a", "b", capacity=100.0, duplex=True)
    ends = {}

    def go(tag, src, dst):
        res = yield fab.transfer(src, dst, 1000.0)
        ends[tag] = res.end

    env.process(go("fwd", "a", "b"))
    env.process(go("rev", "b", "a"))
    env.run()
    assert ends["fwd"] == pytest.approx(10.0)
    assert ends["rev"] == pytest.approx(10.0)


def test_explicit_route_pinning():
    env = Environment()
    fab = Fabric(env)
    f1, _ = fab.add_link("a", "m1", capacity=100.0)
    f2, _ = fab.add_link("m1", "b", capacity=100.0)
    fab.add_link("a", "b", capacity=1.0)  # direct but slow
    fab.set_route("a", "b", [f1, f2])
    res = env.run(fab.transfer("a", "b", 100.0))
    assert res.duration == pytest.approx(1.0)


def test_bad_explicit_route_rejected():
    env = Environment()
    fab = Fabric(env)
    l1, _ = fab.add_link("a", "b", capacity=1.0)
    l2, _ = fab.add_link("c", "d", capacity=1.0)
    with pytest.raises(ValueError):
        fab.set_route("a", "d", [l1, l2])


def test_bytes_delivered_accounting():
    env = Environment()
    fab = _simple_fabric(env)

    def go():
        yield fab.transfer("a", "b", 500.0)
        yield fab.transfer("a", "b", 700.0)

    env.process(go())
    env.run()
    assert fab.bytes_delivered == pytest.approx(1200.0)


def test_many_concurrent_flows_conserve_capacity():
    """Aggregate throughput through one link never exceeds its capacity."""
    env = Environment()
    fab = _simple_fabric(env, cap=100.0)
    results = []

    def go(n):
        res = yield fab.transfer("a", "b", 100.0 * n)
        results.append(res)

    for n in range(1, 11):
        env.process(go(n))
    env.run()
    total_bytes = sum(r.nbytes for r in results)
    makespan = max(r.end for r in results)
    assert total_bytes / makespan <= 100.0 * (1 + 1e-9)
    # Work conservation: the link is saturated the whole time.
    assert total_bytes / makespan == pytest.approx(100.0, rel=1e-6)


# ---------------------------------------------------------------------------
# archive-site topology
# ---------------------------------------------------------------------------

def test_build_archive_site_shape():
    env = Environment()
    topo = build_archive_site(env)
    assert topo.n_fta == 10
    assert len(topo.disk_servers) == 5
    assert topo.n_tape_drives == 24
    # Routes exist for the main data paths.
    fab = topo.fabric
    assert fab.route("scratch", "fta0")
    assert fab.route("fta0", "tapedrv0")
    assert fab.route("fta3", "ds2")


def test_archive_site_trunk_is_waist():
    """All FTAs pulling from scratch together are limited by the trunk."""
    env = Environment()
    topo = build_archive_site(env)
    fab = topo.fabric
    per_fta = 10 * 1000 * MB  # 10 GB each

    results = []

    def pull(node):
        res = yield fab.transfer("scratch", node, per_fta)
        results.append(res)

    for node in topo.fta_nodes:
        env.process(pull(node))
    env.run()
    makespan = max(r.end for r in results)
    agg = 10 * per_fta / makespan
    assert agg <= 2 * TEN_GIGE * (1 + 1e-9)
    assert agg == pytest.approx(2 * TEN_GIGE, rel=1e-3)


def test_archive_site_single_fta_limited_by_nic():
    env = Environment()
    topo = build_archive_site(env)
    res = env.run(topo.fabric.transfer("scratch", "fta0", 1250 * MB))
    assert res.rate == pytest.approx(TEN_GIGE, rel=1e-3)


def test_archive_site_invalid_counts():
    env = Environment()
    with pytest.raises(ValueError):
        build_archive_site(env, n_fta=0)


# ---------------------------------------------------------------------------
# scalar -> vectorised engine promotion
# ---------------------------------------------------------------------------

def _churn_workload(promote_at):
    """Staggered multi-wave transfers whose live-flow population crosses
    *promote_at*; returns (sorted results, bytes_delivered, solves, vec)."""
    from repro.netsim import fabric as fabric_mod

    old = fabric_mod._VEC_PROMOTE
    fabric_mod._VEC_PROMOTE = promote_at
    try:
        env = Environment()
        fab = Fabric(env)
        fab.add_link("a", "m", capacity=100.0)
        fab.add_link("m", "b", capacity=70.0)
        fab.add_link("a", "b", capacity=40.0)
        results = []

        def go(i):
            yield env.timeout(0.01 * i)
            src, dst = ("a", "b") if i % 3 else ("a", "m")
            res = yield fab.transfer(src, dst, 50.0 + 7.0 * (i % 5))
            results.append((res.start, res.end, res.nbytes))

        for i in range(40):
            env.process(go(i))
        env.run()
        results.sort()
        return results, fab.bytes_delivered, fab.rate_recomputes, fab._vec
    finally:
        fabric_mod._VEC_PROMOTE = old


def _require_numpy():
    from repro.netsim import maxmin as maxmin_mod

    if maxmin_mod._np is None:
        pytest.skip("numpy unavailable: the fabric never promotes")


def test_promotion_mid_run_is_bit_identical_to_scalar():
    """Crossing the promotion threshold mid-run must not change a single
    result bit: the vectorised engine is value-preserving at adoption and
    bit-identical in steady state."""
    _require_numpy()
    scalar = _churn_workload(promote_at=10**9)
    promoted = _churn_workload(promote_at=12)
    assert not scalar[3]       # never promoted
    assert promoted[3]         # crossed the threshold mid-run
    assert promoted[:3] == scalar[:3]


def test_promotion_at_start_matches_scalar():
    """Forcing the vector engine from flow #1 (threshold 1) also matches."""
    _require_numpy()
    scalar = _churn_workload(promote_at=10**9)
    vec = _churn_workload(promote_at=1)
    assert vec[3]
    assert vec[:3] == scalar[:3]


def test_promotion_requires_numpy():
    """Without numpy the allocator never reports vec_auto, so the fabric
    stays on the scalar engine regardless of population."""
    from repro.netsim import maxmin as maxmin_mod

    if maxmin_mod._np is None:
        alloc = maxmin_mod.MaxMinAllocator()
        assert not alloc.vec_auto
    else:
        assert maxmin_mod.MaxMinAllocator(vec=False).vec_auto is False
