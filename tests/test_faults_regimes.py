"""Sustained-failure regimes: mechanics + the overlap property.

The hypothesis property at the bottom is the tentpole's composability
claim: an *arbitrary seeded overlap* of regimes (library outage, FTA
pool loss, TSM brownout) preserves job conservation and converges to
the uncrashed oracle's end state once the regimes lift.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.faults import FaultPlan
from repro.perf.drills import _canonical_digests
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.workloads.generators import preload_tree

MB = 1_000_000


def _site(env):
    return ParallelArchiveSystem(env, ArchiveParams(
        n_fta=4, n_disk_servers=2, n_tape_drives=2, n_scratch_tapes=4,
    ))


def _cfg():
    return PftoolConfig(
        num_workers=2, num_readdir=1, num_tapeprocs=0,
        stat_batch=8, copy_batch=4,
        stall_timeout=100000.0, retry_limit=10,
        retry_backoff=1.0, retry_backoff_max=8.0,
    )


# ---------------------------------------------------------------------------
# regime mechanics
# ---------------------------------------------------------------------------

def test_library_outage_fells_and_repairs_all_drives():
    env = Environment()
    system = _site(env)
    system.inject_faults(FaultPlan(1).library_outage(start=5.0, duration=10.0))
    env.run(until=6.0)
    assert len(system.library.healthy_drives) == 0
    env.run(until=16.0)
    assert len(system.library.healthy_drives) == 2


def test_pool_loss_staggers_windows_within_bounds():
    env = Environment()
    system = _site(env)
    nodes = list(system.loadmanager.nodes)[:3]
    injector = system.inject_faults(
        FaultPlan(11).pool_loss(nodes, start=10.0, duration=20.0, stagger=5.0)
    )
    # staggered starts: every window begins inside [start, start+stagger)
    # and not all nodes drop at the same instant
    windows = {w.node: w for w in injector._node_windows}
    assert set(windows) == set(nodes)
    starts = sorted(w.start for w in windows.values())
    assert starts[0] >= 10.0
    assert starts[-1] < 15.0
    assert len(set(starts)) > 1
    env.run(until=16.0)  # inside every window (all start < 15, end > 30)
    assert all(injector.node_down(n) for n in nodes)
    env.run(until=36.0)  # past every window
    assert not any(injector.node_down(n) for n in nodes)


def test_tsm_brownout_inflates_latency_then_restores():
    env = Environment()
    system = _site(env)
    base = system.tsm.txn_time
    system.inject_faults(
        FaultPlan(2).tsm_brownout(start=5.0, duration=10.0, latency_factor=8.0)
    )
    env.run(until=6.0)
    assert system.tsm.txn_time == pytest.approx(base * 8.0)
    env.run(until=16.0)
    assert system.tsm.txn_time == pytest.approx(base)


def test_catalog_corruption_damages_then_reconciles():
    env = Environment()
    system = _site(env)
    system.scratch_fs.mkdir("/d", parents=True)
    for i in range(4):
        env.run(system.scratch_fs.create_sized(f"/d/f{i}", 2 * MB))
    env.run(system.archive("/d", "/arc/d").done)
    env.run(system.migrate_to_tape())
    rows_before = sorted(
        (r["object_id"], r["volume"], r["seq"])
        for r in system.tsm.export_rows()
    )
    injector = system.inject_faults(
        FaultPlan(5).catalog_corruption(at=1.0, rows=2, drop=1)
    )
    env.run(until=env.now + 2.0)
    assert injector.injected.get("catalog", 0) == 3
    # TSM's catalog is ground truth and untouched; the index disagrees
    rows_after = sorted(
        (r["object_id"], r["volume"], r["seq"])
        for r in system.tsm.export_rows()
    )
    assert rows_after == rows_before
    damaged = [
        oid for oid, vol, seq in rows_before
        if (loc := system.tapedb.location_of(oid)) is None
        or (loc.volume, loc.seq) != (vol, seq)
    ]
    assert len(damaged) == 3
    env.run(system.exporter.run_once())
    assert all(
        (loc := system.tapedb.location_of(oid)) is not None
        and (loc.volume, loc.seq) == (vol, seq)
        for oid, vol, seq in rows_before
    )


def test_regimes_are_trace_stamped():
    from repro.trace import tracing
    from repro.trace.assertions import TraceAssertions

    with tracing() as tracer:
        env = Environment()
        system = _site(env)
        system.inject_faults(
            FaultPlan(1)
            .library_outage(start=2.0, duration=4.0)
            .tsm_brownout(start=3.0, duration=4.0)
        )
        env.run(until=10.0)
    ta = TraceAssertions(tracer)
    regimes = ta.select("fault:regime", ph="i")
    kinds = {(ev["args"]["kind"], ev["args"]["phase"]) for ev in regimes}
    assert ("library-outage", "begin") in kinds
    assert ("library-outage", "end") in kinds
    assert ("tsm-brownout", "begin") in kinds
    assert ("tsm-brownout", "end") in kinds


# ---------------------------------------------------------------------------
# overlap property: conservation + oracle convergence
# ---------------------------------------------------------------------------

def _workload(seed: int, plan_of) -> dict:
    """Two trees archived through whatever regimes *plan_of* arms."""
    env = Environment()
    system = _site(env)
    for j in range(2):
        preload_tree(system.scratch_fs, f"/w/t{j}",
                     [1 * MB + 512 * 1024 * j + 100 * seed, 2 * MB])
    plan = plan_of(FaultPlan(seed), list(system.loadmanager.nodes))
    injector = system.inject_faults(plan) if plan is not None else None
    jobs = [
        system.archive(f"/w/t{j}", f"/arc/t{j}", _cfg()) for j in range(2)
    ]
    stats = [env.run(job.done) for job in jobs]
    env.run()
    return {
        "system": system,
        "stats": stats,
        "injector": injector,
        "digests": _canonical_digests_for(system),
    }


def _canonical_digests_for(system):
    from repro.recovery.chaos import end_state

    token_of = {}
    entries = end_state(system.scratch_fs, "/w")
    for rel in sorted(entries):
        _size, tok = entries[rel]
        token_of.setdefault(tok, rel)
    return {
        rel: (size, token_of.get(tok, ("raw", tok)))
        for rel, (size, tok) in end_state(system.archive_fs, "/arc").items()
    }


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    lib_start=st.floats(0.0, 0.06),
    lib_dur=st.floats(0.01, 0.15),
    pool_start=st.floats(0.0, 0.06),
    pool_dur=st.floats(0.01, 0.15),
    pool_n=st.integers(0, 2),
    brown_start=st.floats(0.0, 0.06),
    brown_dur=st.floats(0.01, 0.15),
)
def test_overlapping_regimes_preserve_conservation_and_oracle(
    seed, lib_start, lib_dur, pool_start, pool_dur, pool_n,
    brown_start, brown_dur,
):
    """Any seeded overlap of the three windowed regimes: every file
    lands, nothing is silently lost, and the end state matches the
    fault-free oracle byte for byte."""

    def plan_of(plan, nodes):
        plan.library_outage(start=lib_start, duration=lib_dur)
        plan.tsm_brownout(start=brown_start, duration=brown_dur,
                         latency_factor=6.0)
        if pool_n:
            plan.pool_loss(nodes[:pool_n], start=pool_start,
                           duration=pool_dur, stagger=pool_dur / 2)
        return plan

    faulted = _workload(seed, plan_of)
    oracle = _workload(seed, lambda plan, nodes: None)

    # conservation: every file the oracle archived, the faulted run
    # archived too — none aborted, none failed out of retries
    for st_f, st_o in zip(faulted["stats"], oracle["stats"]):
        assert not st_f.aborted
        assert st_f.files_copied == st_o.files_copied
        assert st_f.bytes_copied == st_o.bytes_copied
        assert getattr(st_f, "files_failed", 0) == 0
    # oracle convergence: identical end state under /arc
    assert faulted["digests"] == oracle["digests"]
