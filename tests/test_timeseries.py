"""Tests for the periodic sampler and the standard probes."""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import (
    PeriodicSampler,
    drive_busy_probe,
    link_utilization_probe,
    pool_occupancy_probe,
)
from repro.netsim import Fabric
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.workloads import small_file_flood

MB = 1_000_000
GB = 1_000_000_000


def test_sampler_collects_on_interval():
    env = Environment()
    state = {"v": 0.0}
    s = PeriodicSampler(env, {"v": lambda: state["v"]}, interval=2.0)

    def mutate():
        yield env.timeout(5.0)
        state["v"] = 7.0
        yield env.timeout(5.0)

    env.process(mutate())
    env.run(until=10.0)
    s.stop()
    assert s.times == [2.0, 4.0, 6.0, 8.0, 10.0]
    assert s.series["v"] == [0.0, 0.0, 7.0, 7.0, 7.0]
    assert s.mean("v") == pytest.approx(21 / 5)
    assert s.peak("v") == 7.0
    assert s.time_above("v", 1.0) == pytest.approx(6.0)


def test_sampler_validates_interval():
    env = Environment()
    with pytest.raises(ValueError):
        PeriodicSampler(env, {}, interval=0)


def test_link_utilization_probe_tracks_flows():
    env = Environment()
    fab = Fabric(env)
    fab.add_link("a", "b", capacity=100.0)
    probe = link_utilization_probe(fab, "a->b")
    s = PeriodicSampler(env, {"u": probe}, interval=1.0)

    def xfer():
        yield fab.transfer("a", "b", 500.0)  # 5s at full rate

    env.process(xfer())
    env.run(until=10.0)
    s.stop()
    # utilisation 1.0 while transferring, 0.0 after
    assert s.series["u"][:4] == [1.0, 1.0, 1.0, 1.0]
    assert s.series["u"][-1] == 0.0
    assert s.time_above("u", 0.99) == pytest.approx(5.0, abs=1.0)


def test_drive_and_pool_probes_end_to_end():
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=2, n_disk_servers=2, n_tape_drives=2, n_scratch_tapes=8,
            tape_spec=TapeSpec(load_time=5.0, unload_time=5.0),
        ),
    )
    paths = small_file_flood(system.archive_fs, "/d", 6, 200 * MB)
    s = PeriodicSampler(
        env,
        {
            "drives": drive_busy_probe(system.library),
            "fast": pool_occupancy_probe(system.archive_fs, "fast"),
        },
        interval=5.0,
    )
    occupancy_before = system.archive_fs.pool_occupancy("fast")
    ev = system.migrate_to_tape()
    env.run(ev)
    s.stop()
    env.run()
    assert s.peak("drives") > 0.0  # drives were busy during migration
    # stubs punched: pool drains to zero
    assert s.series["fast"][-1] <= occupancy_before
    assert system.archive_fs.pool_occupancy("fast") == 0.0
