"""Tests for the disk array model."""

import pytest

from repro.disksim import DiskArray
from repro.sim import Environment, SimulationError


def test_single_write_timing():
    env = Environment()
    arr = DiskArray(env, "a0", capacity_bytes=1e12, bandwidth=100e6, seek_time=0.01)
    res = env.run(arr.write(100e6))
    assert res.duration == pytest.approx(1.01)
    assert arr.writes == 1
    assert arr.bytes_written == 100e6


def test_reads_and_writes_share_bandwidth():
    env = Environment()
    arr = DiskArray(env, "a0", capacity_bytes=1e12, bandwidth=100e6, seek_time=0.0)
    ends = []

    def go(op):
        ev = arr.read(100e6) if op == "r" else arr.write(100e6)
        res = yield ev
        ends.append(res.end)

    env.process(go("r"))
    env.process(go("w"))
    env.run()
    # 200 MB total at 100 MB/s aggregate... but read and write ride separate
    # duplex directions of the internal link, so both finish at ~1s.
    assert max(ends) == pytest.approx(1.0, rel=1e-6)


def test_two_writes_contend():
    env = Environment()
    arr = DiskArray(env, "a0", capacity_bytes=1e12, bandwidth=100e6, seek_time=0.0)
    ends = []

    def go():
        res = yield arr.write(100e6)
        ends.append(res.end)

    env.process(go())
    env.process(go())
    env.run()
    assert max(ends) == pytest.approx(2.0, rel=1e-6)


def test_queue_depth_limits_concurrency():
    env = Environment()
    arr = DiskArray(
        env, "a0", capacity_bytes=1e12, bandwidth=100e6, seek_time=1.0, queue_depth=1
    )
    results = []

    def go():
        res = yield arr.write(0)
        results.append(res)

    env.process(go())
    env.process(go())
    env.run()
    # seek-only ops serialized by queue_depth=1: second queues for 1s
    assert results[1].queued == pytest.approx(1.0)


def test_capacity_accounting():
    env = Environment()
    arr = DiskArray(env, "a0", capacity_bytes=1000, bandwidth=1e6)
    arr.allocate(600)
    assert arr.free_bytes == 400
    with pytest.raises(SimulationError):
        arr.allocate(500)
    arr.free(100)
    assert arr.free_bytes == 500
    arr.free(10_000)  # clamps at zero used
    assert arr.used_bytes == 0


def test_invalid_params():
    env = Environment()
    with pytest.raises(SimulationError):
        DiskArray(env, "bad", capacity_bytes=0, bandwidth=1)
    arr = DiskArray(env, "ok", capacity_bytes=1, bandwidth=1)
    with pytest.raises(SimulationError):
        arr.allocate(-1)
    with pytest.raises(SimulationError):
        arr.read(-5)
