"""Smoke tests for the CLI front ends (argument parsing + end-to-end)."""

import pytest

from repro.cli import bench as bench_cli
from repro.cli import pfcm as pfcm_cli
from repro.cli import pfcp as pfcp_cli
from repro.cli import pfls as pfls_cli
from repro.cli._shared import parse_size

MB = 1_000_000


def test_parse_size_units():
    assert parse_size("1024") == 1024
    assert parse_size("50MB") == 50 * MB
    assert parse_size("50mb") == 50 * MB
    assert parse_size("2g") == 2_000_000_000
    assert parse_size("1.5k") == 1500
    assert parse_size(" 4 GB ") == 4_000_000_000


SMALL = [
    "--files", "8", "--size", "5MB", "--workers", "4",
    "--fta", "2", "--drives", "2",
]


def test_pfcp_cli_runs(capsys):
    rc = pfcp_cli.main(SMALL)
    assert rc == 0
    out = capsys.readouterr().out
    assert "pftool copy: 8 files" in out


def test_pfcp_cli_with_migrate(capsys):
    rc = pfcp_cli.main(SMALL + ["--migrate"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "migrated 8 files" in out


def test_pfls_cli_runs(capsys):
    rc = pfls_cli.main(SMALL + ["--limit", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "8 files listed" in out
    assert out.count("/archive/") == 3


def test_pfcm_cli_clean(capsys):
    rc = pfcm_cli.main(SMALL)
    assert rc == 0
    assert "0 mismatches" in capsys.readouterr().out


def test_pfcm_cli_detects_corruption(capsys):
    rc = pfcm_cli.main(SMALL + ["--corrupt", "2"])
    assert rc == 0  # detection matched the injected count
    out = capsys.readouterr().out
    assert "2 mismatches" in out
    assert out.count("MISMATCH") == 2


def test_bench_cli_lists_experiments(capsys):
    rc = bench_cli.main([])
    assert rc == 0
    out = capsys.readouterr().out
    for exp in ("FIG10", "E1", "A5", "A7"):
        assert exp in out


def test_bench_cli_unknown_experiment(capsys):
    rc = bench_cli.main(["ZZ9"])
    assert rc == 2
