"""Unit + property tests for the max-min fair allocator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import MaxMinAllocator, max_min_fair_rates


def test_single_flow_gets_link_capacity():
    rates = max_min_fair_rates({"f": ["l"]}, {"l": 100.0})
    assert rates["f"] == pytest.approx(100.0)


def test_two_flows_share_equally():
    rates = max_min_fair_rates({"a": ["l"], "b": ["l"]}, {"l": 100.0})
    assert rates["a"] == pytest.approx(50.0)
    assert rates["b"] == pytest.approx(50.0)


def test_classic_three_flow_parking_lot():
    """Flow across both links gets 1/2 of the first bottleneck; locals mop up."""
    rates = max_min_fair_rates(
        {"long": ["l1", "l2"], "a": ["l1"], "b": ["l2"]},
        {"l1": 10.0, "l2": 10.0},
    )
    assert rates["long"] == pytest.approx(5.0)
    assert rates["a"] == pytest.approx(5.0)
    assert rates["b"] == pytest.approx(5.0)


def test_unequal_bottlenecks_give_leftover_to_unconstrained():
    rates = max_min_fair_rates(
        {"long": ["small", "big"], "local": ["big"]},
        {"small": 4.0, "big": 20.0},
    )
    assert rates["long"] == pytest.approx(4.0)
    assert rates["local"] == pytest.approx(16.0)


def test_rate_cap_constrains_flow():
    rates = max_min_fair_rates(
        {"a": ["l"], "b": ["l"]},
        {"l": 300.0},
        rate_cap={"a": 50.0},
    )
    assert rates["a"] == pytest.approx(50.0)
    assert rates["b"] == pytest.approx(250.0)


def test_weights_split_proportionally():
    rates = max_min_fair_rates(
        {"heavy": ["l"], "light": ["l"]},
        {"l": 90.0},
        flow_weight={"heavy": 2.0, "light": 1.0},
    )
    assert rates["heavy"] == pytest.approx(60.0)
    assert rates["light"] == pytest.approx(30.0)


def test_flow_with_no_links_and_no_cap_is_unbounded():
    rates = max_min_fair_rates({"free": []}, {})
    assert rates["free"] == float("inf")


def test_flow_with_only_rate_cap():
    rates = max_min_fair_rates({"f": []}, {}, rate_cap={"f": 42.0})
    assert rates["f"] == pytest.approx(42.0)


def test_unknown_link_raises():
    with pytest.raises(KeyError):
        max_min_fair_rates({"f": ["ghost"]}, {})


def test_empty_input():
    assert max_min_fair_rates({}, {}) == {}


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------

@st.composite
def _scenarios(draw):
    n_links = draw(st.integers(1, 6))
    links = {f"l{i}": draw(st.floats(1.0, 1e4)) for i in range(n_links)}
    n_flows = draw(st.integers(1, 10))
    flows = {}
    for j in range(n_flows):
        k = draw(st.integers(1, n_links))
        chosen = draw(
            st.lists(
                st.sampled_from(sorted(links)), min_size=k, max_size=k, unique=True
            )
        )
        flows[f"f{j}"] = chosen
    return flows, links


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_no_link_oversubscribed(scenario):
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    usage = {lk: 0.0 for lk in links}
    for fid, route in flows.items():
        for lk in route:
            usage[lk] += rates[fid]
    for lk, used in usage.items():
        assert used <= links[lk] * (1 + 1e-6), f"{lk} oversubscribed: {used} > {links[lk]}"


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_every_flow_is_bottlenecked(scenario):
    """Max-min property: each flow crosses at least one saturated link."""
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    usage = {lk: 0.0 for lk in links}
    for fid, route in flows.items():
        for lk in route:
            usage[lk] += rates[fid]
    for fid, route in flows.items():
        assert any(
            usage[lk] >= links[lk] * (1 - 1e-6) for lk in route
        ), f"flow {fid} is not bottlenecked anywhere"


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_rates_positive_and_finite(scenario):
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    for fid in flows:
        assert rates[fid] > 0
        assert math.isfinite(rates[fid])


@given(_scenarios(), st.floats(0.1, 10.0))
@settings(max_examples=100, deadline=None)
def test_allocation_scales_with_capacity(scenario, factor):
    """Scaling all capacities by k scales all rates by k (homogeneity)."""
    flows, links = scenario
    base = max_min_fair_rates(flows, links)
    scaled = max_min_fair_rates(flows, {k: v * factor for k, v in links.items()})
    for fid in flows:
        assert scaled[fid] == pytest.approx(base[fid] * factor, rel=1e-6)


# ---------------------------------------------------------------------------
# incremental allocator == batch oracle
# ---------------------------------------------------------------------------

def _oracle(alloc: MaxMinAllocator) -> dict:
    """Batch-solve the allocator's current state with the reference solver."""
    flows, caps, weights, rate_caps = {}, {}, {}, {}
    for lk, cap in alloc._caps.items():
        if isinstance(lk, tuple) and lk[0] == "__cap__":
            rate_caps[lk[1]] = cap
        else:
            caps[lk] = cap
    for fid, route in alloc._flow_links.items():
        flows[fid] = [
            lk for lk in route if not (isinstance(lk, tuple) and lk[0] == "__cap__")
        ]
        weights[fid] = alloc._weights[fid]
    return max_min_fair_rates(flows, caps, rate_cap=rate_caps, flow_weight=weights)


def _assert_matches_oracle(alloc: MaxMinAllocator) -> None:
    alloc.flush()
    want = _oracle(alloc)
    assert set(alloc.rates) == set(want)
    for fid, rate in want.items():
        got = alloc.rates[fid]
        if rate == float("inf"):
            assert got == rate, f"flow {fid}: {got} != inf"
        else:
            assert got == pytest.approx(rate, rel=1e-9), f"flow {fid}"


def test_incremental_matches_batch_parking_lot():
    alloc = MaxMinAllocator()
    alloc.set_capacity("l1", 10.0)
    alloc.set_capacity("l2", 10.0)
    alloc.add_flow(1, ["l1", "l2"])
    alloc.add_flow(2, ["l1"])
    alloc.add_flow(3, ["l2"])
    _assert_matches_oracle(alloc)
    assert alloc.rates[1] == pytest.approx(5.0)


def test_incremental_tracks_capacity_change():
    alloc = MaxMinAllocator()
    alloc.set_capacity("trunk", 100.0)
    alloc.add_flow(1, ["trunk"])
    alloc.add_flow(2, ["trunk"])
    alloc.flush()
    assert alloc.rates[1] == pytest.approx(50.0)
    alloc.set_capacity("trunk", 40.0)  # degrade mid-run
    _assert_matches_oracle(alloc)
    assert alloc.rates[2] == pytest.approx(20.0)


def test_short_circuit_lone_flow_needs_no_solve():
    alloc = MaxMinAllocator()
    alloc.set_capacity("a", 7.0)
    rate = alloc.add_flow(1, ["a"])
    assert rate == pytest.approx(7.0)  # settled immediately, no dirty links
    before = alloc.solves
    alloc.flush()
    assert alloc.solves == before  # nothing to do


@st.composite
def _op_sequences(draw):
    """A link set plus an interleaved add/remove/recap operation script."""
    n_links = draw(st.integers(1, 5))
    links = {f"l{i}": draw(st.floats(1.0, 1e4)) for i in range(n_links)}
    n_ops = draw(st.integers(1, 14))
    ops = []
    next_fid = 0
    live = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["add", "add", "add", "remove", "recap"]))
        if kind == "add":
            k = draw(st.integers(0, n_links))
            route = draw(
                st.lists(
                    st.sampled_from(sorted(links)), min_size=k, max_size=k, unique=True
                )
            )
            weight = draw(st.floats(0.1, 8.0))
            cap = draw(st.one_of(st.just(float("inf")), st.floats(0.5, 5e3)))
            ops.append(("add", next_fid, route, weight, cap))
            live.append(next_fid)
            next_fid += 1
        elif kind == "remove" and live:
            fid = draw(st.sampled_from(live))
            live.remove(fid)
            ops.append(("remove", fid))
        elif kind == "recap":
            lk = draw(st.sampled_from(sorted(links)))
            ops.append(("recap", lk, draw(st.floats(1.0, 1e4))))
    return links, ops


@given(_op_sequences(), st.booleans())
@settings(max_examples=200, deadline=None)
def test_incremental_equals_batch_over_random_histories(script, flush_every_op):
    """The dirty-component solver must agree with the full batch solve after
    any interleaving of flow arrivals/departures and capacity changes —
    whether rates are settled after every event or lazily at the end."""
    links, ops = script
    alloc = MaxMinAllocator()
    for lk, cap in links.items():
        alloc.set_capacity(lk, cap)
    for op in ops:
        if op[0] == "add":
            _, fid, route, weight, cap = op
            alloc.add_flow(fid, route, weight=weight, rate_cap=cap)
        elif op[0] == "remove":
            alloc.remove_flow(op[1])
        else:
            alloc.set_capacity(op[1], op[2])
        if flush_every_op:
            _assert_matches_oracle(alloc)
    _assert_matches_oracle(alloc)
