"""Unit + property tests for the max-min fair allocator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import max_min_fair_rates


def test_single_flow_gets_link_capacity():
    rates = max_min_fair_rates({"f": ["l"]}, {"l": 100.0})
    assert rates["f"] == pytest.approx(100.0)


def test_two_flows_share_equally():
    rates = max_min_fair_rates({"a": ["l"], "b": ["l"]}, {"l": 100.0})
    assert rates["a"] == pytest.approx(50.0)
    assert rates["b"] == pytest.approx(50.0)


def test_classic_three_flow_parking_lot():
    """Flow across both links gets 1/2 of the first bottleneck; locals mop up."""
    rates = max_min_fair_rates(
        {"long": ["l1", "l2"], "a": ["l1"], "b": ["l2"]},
        {"l1": 10.0, "l2": 10.0},
    )
    assert rates["long"] == pytest.approx(5.0)
    assert rates["a"] == pytest.approx(5.0)
    assert rates["b"] == pytest.approx(5.0)


def test_unequal_bottlenecks_give_leftover_to_unconstrained():
    rates = max_min_fair_rates(
        {"long": ["small", "big"], "local": ["big"]},
        {"small": 4.0, "big": 20.0},
    )
    assert rates["long"] == pytest.approx(4.0)
    assert rates["local"] == pytest.approx(16.0)


def test_rate_cap_constrains_flow():
    rates = max_min_fair_rates(
        {"a": ["l"], "b": ["l"]},
        {"l": 300.0},
        rate_cap={"a": 50.0},
    )
    assert rates["a"] == pytest.approx(50.0)
    assert rates["b"] == pytest.approx(250.0)


def test_weights_split_proportionally():
    rates = max_min_fair_rates(
        {"heavy": ["l"], "light": ["l"]},
        {"l": 90.0},
        flow_weight={"heavy": 2.0, "light": 1.0},
    )
    assert rates["heavy"] == pytest.approx(60.0)
    assert rates["light"] == pytest.approx(30.0)


def test_flow_with_no_links_and_no_cap_is_unbounded():
    rates = max_min_fair_rates({"free": []}, {})
    assert rates["free"] == float("inf")


def test_flow_with_only_rate_cap():
    rates = max_min_fair_rates({"f": []}, {}, rate_cap={"f": 42.0})
    assert rates["f"] == pytest.approx(42.0)


def test_unknown_link_raises():
    with pytest.raises(KeyError):
        max_min_fair_rates({"f": ["ghost"]}, {})


def test_empty_input():
    assert max_min_fair_rates({}, {}) == {}


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------

@st.composite
def _scenarios(draw):
    n_links = draw(st.integers(1, 6))
    links = {f"l{i}": draw(st.floats(1.0, 1e4)) for i in range(n_links)}
    n_flows = draw(st.integers(1, 10))
    flows = {}
    for j in range(n_flows):
        k = draw(st.integers(1, n_links))
        chosen = draw(
            st.lists(
                st.sampled_from(sorted(links)), min_size=k, max_size=k, unique=True
            )
        )
        flows[f"f{j}"] = chosen
    return flows, links


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_no_link_oversubscribed(scenario):
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    usage = {lk: 0.0 for lk in links}
    for fid, route in flows.items():
        for lk in route:
            usage[lk] += rates[fid]
    for lk, used in usage.items():
        assert used <= links[lk] * (1 + 1e-6), f"{lk} oversubscribed: {used} > {links[lk]}"


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_every_flow_is_bottlenecked(scenario):
    """Max-min property: each flow crosses at least one saturated link."""
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    usage = {lk: 0.0 for lk in links}
    for fid, route in flows.items():
        for lk in route:
            usage[lk] += rates[fid]
    for fid, route in flows.items():
        assert any(
            usage[lk] >= links[lk] * (1 - 1e-6) for lk in route
        ), f"flow {fid} is not bottlenecked anywhere"


@given(_scenarios())
@settings(max_examples=200, deadline=None)
def test_rates_positive_and_finite(scenario):
    flows, links = scenario
    rates = max_min_fair_rates(flows, links)
    for fid in flows:
        assert rates[fid] > 0
        assert math.isfinite(rates[fid])


@given(_scenarios(), st.floats(0.1, 10.0))
@settings(max_examples=100, deadline=None)
def test_allocation_scales_with_capacity(scenario, factor):
    """Scaling all capacities by k scales all rates by k (homogeneity)."""
    flows, links = scenario
    base = max_min_fair_rates(flows, links)
    scaled = max_min_fair_rates(flows, {k: v * factor for k, v in links.items()})
    for fid in flows:
        assert scaled[fid] == pytest.approx(base[fid] * factor, rel=1e-6)
