"""Property tests: journal resume is idempotent at *any* crash prefix.

The crash model behind the properties: the journal on disk is an fsync'd
prefix of what the job appended — a crash at record *k* leaves the file
system possibly *ahead* of the journal (copies applied but not yet
journalled), never behind.  For every prefix, recovering from
``truncate(k)`` must converge to the uncrashed oracle's end state, with
re-copies bounded by what the journal never learned about.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disksim import DiskArray
from repro.faults import CrashFault, classify_failure
from repro.pfs import GpfsFileSystem, StoragePool
from repro.pftool import PftoolConfig, RuntimeContext
from repro.pftool.job import PftoolJob, pfcp
from repro.recovery import JobJournal
from repro.sim import Environment

MB = 1_000_000

#: 4 small files + 1 chunked (8 chunks of 1MB)
SRC_LAYOUT = {
    "/src/a": 120_000,
    "/src/sub/b": 450_000,
    "/src/sub/c": 40_000,
    "/src/d": 300_000,
    "/src/big": 8 * MB,
}


def make_pair(env):
    def fs(name):
        f = GpfsFileSystem(env, name, metadata_op_time=0.0)
        arr = DiskArray(env, f"{name}-a", capacity_bytes=1e15,
                        bandwidth=1e9, seek_time=0.0)
        f.add_pool(StoragePool("p", [arr]), default=True)
        return f

    src, dst = fs("src"), fs("dst")

    def go():
        for path, size in sorted(SRC_LAYOUT.items()):
            parent = path.rsplit("/", 1)[0] or "/"
            src.mkdir(parent, parents=True)
            yield src.write_file("n0", path, size)

    env.run(env.process(go()))
    return src, dst


def make_cfg():
    return PftoolConfig(
        num_workers=2, num_readdir=1, num_tapeprocs=0, copy_batch=2,
        chunk_threshold=4 * MB, copy_chunk_size=1 * MB,
        watchdog_interval=5.0, stall_timeout=60.0,
    )


def make_ctx(src, dst):
    return RuntimeContext(src_fs=src, dst_fs=dst, nodes=["n0", "n1"])


def dst_state(dst):
    return {p: i.size for p, i in dst.walk("/") if i.is_file}


_ORACLE = {}


def oracle():
    """Uncrashed reference run (computed once; the sim is deterministic)."""
    if not _ORACLE:
        env = Environment()
        src, dst = make_pair(env)
        journal = JobJournal(env)
        job = pfcp(env, make_ctx(src, dst), "/src", "/dst", make_cfg(),
                   journal=journal)
        env.run(job.done)
        _ORACLE.update(
            n_records=len(journal), sizes=dst_state(dst), journal=journal
        )
    return _ORACLE


@settings(max_examples=20, deadline=None)
@given(k=st.integers(min_value=1, max_value=200))
def test_resume_from_any_journal_prefix_converges_to_oracle(k):
    want = oracle()
    k = 1 + (k - 1) % want["n_records"]  # wrap into the real record range

    env = Environment()
    src, dst = make_pair(env)
    journal = JobJournal(env)
    job = pfcp(env, make_ctx(src, dst), "/src", "/dst", make_cfg(),
               journal=journal)

    def hook(rec):
        if len(journal.records) == k:
            journal.after_append = None
            env.call_later(
                0.0, lambda: job.crash(CrashFault(f"crash at record {k}"))
            )

    journal.after_append = hook
    try:
        env.run(job.done)
    except CrashFault as exc:
        assert classify_failure(exc) == "crash"
    env.run()  # drain torn I/O

    # the fsync'd journal lost every record past the crash prefix
    replay = journal.truncate(k)
    rjob = PftoolJob.resume(env, make_ctx(src, dst), replay, make_cfg())
    stats2 = env.run(rjob.done)

    assert not stats2.aborted
    assert dst_state(dst) == want["sizes"]
    for path in want["sizes"]:
        src_path = "/src" + path[len("/dst"):]
        assert dst.lookup(path).content_token == \
            src.lookup(src_path).content_token, path
    # every source file is accounted for exactly once on resume
    assert stats2.files_copied + stats2.files_skipped == len(SRC_LAYOUT)


@settings(max_examples=20, deadline=None)
@given(k=st.integers(min_value=0, max_value=200))
def test_any_journal_prefix_roundtrips_through_the_codec(k):
    want = oracle()
    cut = want["journal"].truncate(k % (want["n_records"] + 1))
    back = JobJournal.from_payload(json.loads(json.dumps(cut.to_payload())))
    assert [(r.seq, r.type, r.data) for r in back.records] == \
        [(r.seq, r.type, r.data) for r in cut.records]
    assert back.completed_files() == cut.completed_files()
    assert back.bytes_recorded() == cut.bytes_recorded()
    for path in set(list(cut.completed_files()) + ["/dst/big"]):
        assert back.chunk_ranges(path) == cut.chunk_ranges(path)
