"""Unit tests for repro.trace: tracer, metrics, exporters, assertions, CLI."""

import json

import pytest

from repro.sim import Environment
from repro.trace import (
    NULL_CHANNEL,
    MetricsRegistry,
    Tracer,
    install,
    tracing,
    uninstall,
)
from repro.trace.assertions import TraceAssertions
from repro.trace.export import chrome_events, write_chrome, write_jsonl


# ---------------------------------------------------------------------------
# channel lifecycle
# ---------------------------------------------------------------------------

def test_environment_gets_null_channel_by_default():
    env = Environment()
    assert env.trace is NULL_CHANNEL
    assert env.trace.enabled is False
    # null ops are safe even unguarded
    span = env.trace.begin("x")
    span.end()
    env.trace.instant("y")
    env.trace.counter("z", 1)


def test_tracing_context_binds_and_restores():
    assert Environment().trace.enabled is False
    with tracing() as tracer:
        env = Environment()
        assert env.trace.enabled is True
        env.trace.instant("inside")
    assert Environment().trace.enabled is False
    assert tracer.events[0]["name"] == "inside"


def test_install_uninstall():
    tracer = Tracer()
    install(tracer)
    try:
        assert Environment().trace.enabled
    finally:
        uninstall()
    assert not Environment().trace.enabled


def test_nested_tracing_restores_outer():
    with tracing() as outer:
        with tracing() as inner:
            Environment().trace.instant("deep")
        env = Environment()
        env.trace.instant("shallow")
    assert [e["name"] for e in inner.events] == ["deep"]
    assert [e["name"] for e in outer.events] == ["shallow"]


# ---------------------------------------------------------------------------
# spans and events
# ---------------------------------------------------------------------------

def _traced_env():
    tracer = Tracer()
    install(tracer)
    env = Environment()
    uninstall()
    return tracer, env


def test_span_records_simulated_interval():
    tracer, env = _traced_env()

    def p():
        with env.trace.begin("work", tid="w", args={"k": 1}):
            yield env.timeout(3.25)

    env.process(p())
    env.run()
    (ev,) = tracer.events
    assert ev == {"ph": "X", "name": "work", "ts": 0.0, "dur": 3.25,
                  "tid": "w", "args": {"k": 1}}


def test_span_end_merges_extra_args_and_is_idempotent():
    tracer, env = _traced_env()
    span = env.trace.begin("s", args={"a": 1})
    span.end(b=2)
    span.end(c=3)  # ignored
    (ev,) = tracer.events
    assert ev["args"] == {"a": 1, "b": 2}


def test_finalize_closes_dangling_spans():
    tracer, env = _traced_env()

    def p():
        env.trace.begin("never-closed", tid="w")
        yield env.timeout(5.0)

    env.process(p())
    env.run()
    tracer.finalize()
    (ev,) = tracer.events
    assert ev["dur"] == 5.0
    assert ev["args"]["unfinished"] is True
    # finalize is idempotent
    tracer.finalize()
    assert len(tracer.events) == 1


def test_counter_event_shape():
    tracer, env = _traced_env()
    env.trace.counter("queue_depth", 7, tid="mgr")
    (ev,) = tracer.events
    assert ev["ph"] == "C"
    assert ev["args"] == {"queue_depth": 7}


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

def test_metrics_counter_gauge_histogram():
    reg = MetricsRegistry()
    reg.counter("n").inc()
    reg.counter("n").inc(4)
    reg.gauge("t").set(2.5)
    h = reg.histogram("sizes")
    for v in (5, 50, 50, 5_000_000):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["n"] == 5
    assert snap["t"] == 2.5
    assert snap["sizes"]["count"] == 4
    assert snap["sizes"]["sum"] == 5_000_105.0
    assert snap["sizes"]["min"] == 5
    assert snap["sizes"]["max"] == 5_000_000
    assert h.mean == pytest.approx(1_250_026.25)


def test_metrics_kind_collision_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_metrics_snapshot_registration_order():
    reg = MetricsRegistry()
    reg.counter("b")
    reg.counter("a")
    assert list(reg.snapshot()) == ["b", "a"]


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def _sample_tracer():
    tracer, env = _traced_env()

    def p():
        with env.trace.begin("phase", tid="w0", cat="test"):
            yield env.timeout(1.5)
        env.trace.instant("tick", tid="w0")

    env.process(p())
    env.run()
    tracer.metrics.counter("files").inc(3)
    return tracer


def test_jsonl_export_roundtrips(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "t.jsonl"
    with open(path, "w") as fh:
        write_jsonl(tracer, fh)
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines[0]["schema"] == 1
    assert lines[1]["name"] == "phase"
    assert lines[2]["name"] == "tick"
    assert lines[-1]["metrics"] == {"files": 3}


def test_chrome_export_is_valid_trace_event_json(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "t.trace.json"
    with open(path, "w") as fh:
        write_chrome(tracer, fh)
    doc = json.loads(path.read_text())
    evs = doc["traceEvents"]
    assert {e["ph"] for e in evs} == {"X", "i"}
    span = next(e for e in evs if e["ph"] == "X")
    # microsecond integer clock
    assert span["ts"] == 0 and span["dur"] == 1_500_000
    assert span["pid"] == 1 and span["tid"] == "w0"
    inst = next(e for e in evs if e["ph"] == "i")
    assert inst["s"] == "t"
    assert doc["otherData"]["metrics"] == {"files": 3}


def test_chrome_events_microsecond_rounding():
    tracer, env = _traced_env()
    span = env.trace.begin("s")
    span.end(t1=1.23456789)
    (ev,) = chrome_events(tracer)
    assert ev["dur"] == 1_234_568


# ---------------------------------------------------------------------------
# assertions
# ---------------------------------------------------------------------------

def _tracer_with(events):
    tracer = Tracer()
    tracer.events.extend(events)
    return tracer


def span(name, ts, dur, tid="", **args):
    ev = {"ph": "X", "name": name, "ts": ts, "dur": dur}
    if tid:
        ev["tid"] = tid
    if args:
        ev["args"] = args
    return ev


def test_happens_before_passes_and_fails():
    ok = TraceAssertions(_tracer_with([
        span("store", 0, 2), span("recall", 3, 1),
    ]))
    ok.happens_before("store", "recall")
    bad = TraceAssertions(_tracer_with([
        span("store", 0, 5), span("recall", 3, 1),
    ]))
    with pytest.raises(AssertionError, match="starts before"):
        bad.happens_before("store", "recall")


def test_happens_before_grouped_by_args():
    # per-volume: v1's recall may start before v2's store ends
    ta = TraceAssertions(_tracer_with([
        span("store", 0, 2, volume="v1"),
        span("store", 1, 9, volume="v2"),
        span("recall", 3, 1, volume="v1"),
    ]))
    ta.happens_before("store", "recall", per="args:volume")
    with pytest.raises(AssertionError):
        ta.happens_before("store", "recall")  # ungrouped: v2 still open


def test_no_overlap_detects_double_mount():
    ok = TraceAssertions(_tracer_with([
        span("drive:mounted", 0, 5, tid="dr0"),
        span("drive:mounted", 5, 5, tid="dr0"),  # touching is fine
        span("drive:mounted", 2, 5, tid="dr1"),  # other drive may overlap
    ]))
    ok.no_overlap("drive:mounted", per="tid")
    bad = TraceAssertions(_tracer_with([
        span("drive:mounted", 0, 5, tid="dr0"),
        span("drive:mounted", 4, 5, tid="dr0"),
    ]))
    with pytest.raises(AssertionError, match="overlap"):
        bad.no_overlap("drive:mounted", per="tid")


def test_monotonic_tape_order():
    ok = TraceAssertions(_tracer_with([
        span("recall", 0, 1, volume="v1", seq=1),
        span("recall", 1, 1, volume="v2", seq=1),
        span("recall", 2, 1, volume="v1", seq=3),
    ]))
    ok.monotonic("recall", "seq", per="args:volume")
    bad = TraceAssertions(_tracer_with([
        span("recall", 0, 1, volume="v1", seq=3),
        span("recall", 1, 1, volume="v1", seq=1),
    ]))
    with pytest.raises(AssertionError, match="not monotonic"):
        bad.monotonic("recall", "seq", per="args:volume")


def test_covers_detects_gap_overlap_and_short():
    full = TraceAssertions(_tracer_with([
        span("chunk", 0, 1, dst="/f", offset=0, length=10),
        span("chunk", 1, 1, dst="/f", offset=10, length=10),
    ]))
    full.covers("chunk", 20, per="args:dst")
    gap = TraceAssertions(_tracer_with([
        span("chunk", 0, 1, dst="/f", offset=0, length=10),
        span("chunk", 1, 1, dst="/f", offset=15, length=5),
    ]))
    with pytest.raises(AssertionError, match="gap"):
        gap.covers("chunk", 20, per="args:dst")
    short = TraceAssertions(_tracer_with([
        span("chunk", 0, 1, dst="/f", offset=0, length=10),
    ]))
    with pytest.raises(AssertionError, match="end at 10"):
        short.covers("chunk", 20, per="args:dst")


def test_span_count_and_missing_names():
    ta = TraceAssertions(_tracer_with([span("a", 0, 1)]))
    ta.span_count("a", expect=1)
    with pytest.raises(AssertionError):
        ta.span_count("a", expect=2)
    with pytest.raises(AssertionError, match="no events"):
        ta.happens_before("nope", "a")
    with pytest.raises(AssertionError, match="no spans"):
        ta.no_overlap("nope")


# ---------------------------------------------------------------------------
# CLI / determinism
# ---------------------------------------------------------------------------

def test_cli_traces_scenario_byte_identically(tmp_path):
    from repro.trace.__main__ import main

    out1, out2 = tmp_path / "r1", tmp_path / "r2"
    assert main(["--scenario", "fabric_sparse", "--seed", "5",
                 "--out", str(out1)]) == 0
    assert main(["--scenario", "fabric_sparse", "--seed", "5",
                 "--out", str(out2)]) == 0
    for suffix in (".jsonl", ".trace.json"):
        b1 = (tmp_path / f"r1{suffix}").read_bytes()
        b2 = (tmp_path / f"r2{suffix}").read_bytes()
        assert b1 == b2
    doc = json.loads((tmp_path / "r1.trace.json").read_text())
    assert doc["otherData"]["scenario"] == "fabric_sparse"
    assert doc["otherData"]["seed"] == 5
    assert len(doc["traceEvents"]) > 0


def test_cli_seed_changes_trace(tmp_path):
    from repro.trace.__main__ import main

    assert main(["--scenario", "fabric_sparse", "--seed", "1",
                 "--out", str(tmp_path / "a")]) == 0
    assert main(["--scenario", "fabric_sparse", "--seed", "2",
                 "--out", str(tmp_path / "b")]) == 0
    assert (tmp_path / "a.jsonl").read_bytes() != (tmp_path / "b.jsonl").read_bytes()


def test_cli_unknown_scenario_exit_code(tmp_path, capsys):
    from repro.trace.__main__ import main

    assert main(["--scenario", "no_such", "--out", str(tmp_path / "x")]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_tracing_does_not_perturb_simulated_results():
    """The overhead contract: tracing must be observational only."""
    from repro.perf.scenarios import fabric_sparse

    plain = fabric_sparse(seed=11).headline
    with tracing():
        traced = fabric_sparse(seed=11).headline
    assert plain == traced
