"""Tests for policy-text-driven operation and dynamic link degradation."""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.netsim import Fabric
from repro.pfs import HsmState
from repro.sim import Environment
from repro.tapesim import TapeSpec

MB = 1_000_000
GB = 1_000_000_000

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env):
    return ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
            tape_spec=FAST_SPEC, metadata_op_time=0.0002,
        ),
    )


def seed_archive(env, system, layout):
    def go():
        for path, (size, uid) in layout.items():
            parent = path.rsplit("/", 1)[0] or "/"
            system.archive_fs.mkdir(parent, parents=True)
            yield system.archive_fs.write_file("fta0", path, size, uid=uid)

    env.run(env.process(go()))


# ---------------------------------------------------------------------------
# mmapplypolicy workflow
# ---------------------------------------------------------------------------

def test_policy_text_list_rule():
    env = Environment()
    system = small_site(env)
    seed_archive(env, system, {
        "/p/a.dat": (50 * MB, "alice"),
        "/p/b.txt": (1000, "alice"),
    })
    result, reports = env.run(system.apply_policy_text(
        "RULE 'cand' LIST 'big' WHERE FILE_SIZE > 1 MB"
    ))
    assert [h.path for h in result.lists["big"]] == ["/p/a.dat"]
    assert reports == []


def test_policy_text_migrates_to_external_pool():
    env = Environment()
    system = small_site(env)
    seed_archive(env, system, {
        "/p/old.dat": (50 * MB, "alice"),
        "/p/new.dat": (50 * MB, "alice"),
    })
    # age the first file: bump mtimes apart
    system.archive_fs.lookup("/p/old.dat").mtime = env.now - 90 * 86400

    result, reports = env.run(system.apply_policy_text(
        "RULE 'age-out' MIGRATE FROM POOL 'fast' TO POOL 'hsm' "
        "WHERE MODIFICATION_AGE > 30 DAYS"
    ))
    assert len(reports) == 1
    assert reports[0].files == 1
    assert system.archive_fs.lookup("/p/old.dat").hsm_state is HsmState.MIGRATED
    assert system.archive_fs.lookup("/p/new.dat").hsm_state is HsmState.RESIDENT
    # tape index refreshed
    oid = system.archive_fs.lookup("/p/old.dat").tsm_object_id
    assert system.tapedb.location_of(oid) is not None


def test_policy_text_installs_placement_rules():
    env = Environment()
    system = small_site(env)
    env.run(system.apply_policy_text(
        "RULE 'tmp-to-slow' SET POOL 'slow' WHERE NAME LIKE '%.tmp'"
    ))
    seed_archive(env, system, {"/p/x.tmp": (10 * MB, "bob")})
    assert system.archive_fs.lookup("/p/x.tmp").pool == "slow"


def test_policy_text_threshold_migration():
    env = Environment()
    system = small_site(env)
    # shrink the fast pool so thresholds trip
    for arr in system.archive_fs.pool("fast").arrays:
        arr.capacity_bytes = 100 * MB
    seed_archive(env, system, {
        f"/p/f{i}": (30 * MB, "alice") for i in range(5)
    })  # 150/200 MB = 75%
    result, reports = env.run(system.apply_policy_text(
        "RULE 'spill' MIGRATE FROM POOL 'fast' THRESHOLD(70, 30) "
        "TO POOL 'hsm' WEIGHT(FILE_SIZE)"
    ))
    assert len(reports) == 1
    assert reports[0].files >= 3  # enough to fall from 75% toward 30%
    assert system.archive_fs.pool("fast").occupancy <= 0.35


# ---------------------------------------------------------------------------
# dynamic link capacity
# ---------------------------------------------------------------------------

def test_degraded_link_slows_inflight_flow():
    env = Environment()
    fab = Fabric(env)
    fab.add_link("a", "b", capacity=100.0)
    ends = {}

    def xfer():
        res = yield fab.transfer("a", "b", 1000.0)
        ends["t"] = res.end

    def degrade():
        yield env.timeout(5.0)  # 500 B delivered by now
        fab.set_link_capacity("a->b", 50.0)

    env.process(xfer())
    env.process(degrade())
    env.run()
    # 500B at 100B/s + 500B at 50B/s = 5 + 10
    assert ends["t"] == pytest.approx(15.0)


def test_link_repair_speeds_up():
    env = Environment()
    fab = Fabric(env)
    fab.add_link("a", "b", capacity=50.0)
    ends = {}

    def xfer():
        res = yield fab.transfer("a", "b", 1000.0)
        ends["t"] = res.end

    def repair():
        yield env.timeout(10.0)  # 500 B delivered
        fab.set_link_capacity("a->b", 100.0)

    env.process(xfer())
    env.process(repair())
    env.run()
    assert ends["t"] == pytest.approx(15.0)


def test_set_capacity_validation():
    env = Environment()
    fab = Fabric(env)
    fab.add_link("a", "b", capacity=10.0)
    with pytest.raises(KeyError):
        fab.set_link_capacity("ghost", 5.0)
    with pytest.raises(ValueError):
        fab.set_link_capacity("a->b", 0.0)


def test_trunk_degradation_end_to_end():
    """Half the trunk dies mid-job: the archive rate drops accordingly."""
    env = Environment()
    system = small_site(env)
    from repro.pftool import PftoolConfig
    from repro.workloads import huge_file_campaign

    huge_file_campaign(system.scratch_fs, "/d", 8, 2 * GB)
    cfg = PftoolConfig(num_workers=8, num_readdir=1, num_tapeprocs=0,
                       chunk_threshold=10**18, copy_batch=1)
    job = system.archive("/d", "/a", cfg)

    def degrade():
        yield env.timeout(3.0)
        # one of the two 10GigE trunk links fails
        system.topology.fabric.set_link_capacity("site-trunk", 1250 * MB)

    env.process(degrade())
    stats = env.run(job.done)
    assert stats.files_copied == 8
    # 16 GB: with a healthy trunk this takes ~6.4s; degraded, much longer
    assert stats.duration > 9.0
