"""Tests for the multi-dimensional metadata catalogue (§7 future work)."""

import pytest

from repro.disksim import DiskArray
from repro.pfs import GpfsFileSystem, HsmState, StoragePool
from repro.search import MetadataCatalog, Query
from repro.sim import Environment

MB = 1_000_000


def build_fs(env):
    fs = GpfsFileSystem(env, "arch", metadata_op_time=0.0)
    arr = DiskArray(env, "a", capacity_bytes=1e14, bandwidth=1e9, seek_time=0.0)
    fs.add_pool(StoragePool("fast", [arr]), default=True)
    return fs


def seed(env, fs):
    def go():
        fs.mkdir("/proj/alice", parents=True)
        fs.mkdir("/proj/bob", parents=True)
        yield fs.write_file("c", "/proj/alice/ckpt_001.h5", 500 * MB, uid="alice")
        yield fs.write_file("c", "/proj/alice/ckpt_002.h5", 600 * MB, uid="alice")
        yield fs.write_file("c", "/proj/alice/notes.txt", 1000, uid="alice")
        yield fs.write_file("c", "/proj/bob/run.dat", 50 * MB, uid="bob")

    env.run(env.process(go()))


def test_build_and_count():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs, scan_rate=1e6)
    n = env.run(cat.build())
    assert n == 4
    assert len(cat) == 4
    assert cat.built_at == pytest.approx(env.now)


def test_build_charges_scan_time():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs, scan_rate=2.0)  # 2 inodes/s
    t0 = env.now
    env.run(cat.build())
    assert env.now - t0 == pytest.approx(4 / 2.0)


def test_search_by_owner():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())
    hits = env.run(cat.search(Query(owner="alice")))
    assert len(hits) == 3
    assert all(h.owner == "alice" for h in hits)


def test_search_multi_dimensional():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())
    hits = env.run(
        cat.search(
            Query(owner="alice", size_min=100 * MB, name_glob="ckpt_*.h5")
        )
    )
    assert [h.path for h in hits] == [
        "/proj/alice/ckpt_001.h5",
        "/proj/alice/ckpt_002.h5",
    ]


def test_search_size_range():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())
    hits = env.run(cat.search(Query(size_min=2000, size_max=100 * MB)))
    assert [h.path for h in hits] == ["/proj/bob/run.dat"]


def test_search_mtime_window():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)

    def later():
        yield env.timeout(1000)
        yield fs.write_file("c", "/proj/bob/new.dat", 5 * MB, uid="bob")

    env.run(env.process(later()))
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())
    hits = env.run(cat.search(Query(modified_after=500.0)))
    assert [h.path for h in hits] == ["/proj/bob/new.dat"]


def test_search_hsm_state_dimension():
    """Find what's on tape vs on disk without touching tape."""
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    inode = fs.lookup("/proj/alice/ckpt_001.h5")
    inode.tsm_object_id = 1
    inode.hsm_state = HsmState.MIGRATED
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())
    hits = env.run(cat.search(Query(hsm_state="migrated")))
    assert [h.path for h in hits] == ["/proj/alice/ckpt_001.h5"]


def test_tags_survive_rebuild():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())
    cat.tag("/proj/alice/ckpt_001.h5", "campaign:openscience", "published")
    env.run(cat.build())  # rebuild keeps tags
    hits = env.run(cat.search(Query(tag="published")))
    assert len(hits) == 1
    assert "campaign:openscience" in hits[0].tags


def test_tag_unknown_file_raises():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())

    def go():
        yield fs.write_file("c", "/proj/bob/untracked", 10)

    env.run(env.process(go()))
    with pytest.raises(KeyError):
        cat.tag("/proj/bob/untracked", "x")


def test_path_prefix_and_empty_result():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())
    hits = env.run(cat.search(Query(path_prefix="/proj/bob/")))
    assert [h.path for h in hits] == ["/proj/bob/run.dat"]
    hits = env.run(cat.search(Query(owner="nobody")))
    assert hits == []


def test_unconstrained_query_returns_everything():
    env = Environment()
    fs = build_fs(env)
    seed(env, fs)
    cat = MetadataCatalog(env, fs)
    env.run(cat.build())
    hits = env.run(cat.search(Query()))
    assert len(hits) == 4
