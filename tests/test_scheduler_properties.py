"""Property tests for the scheduler: no starvation, conservation,
same-seed determinism.

The fair-share properties are checked at two levels: the stride
accountant in isolation (fast, many examples) and the whole service
end-to-end against a small simulated site with random submissions,
cancels and preempt/resume mid-run (few examples, each a full
simulation).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pftool import PftoolConfig
from repro.scheduler import (
    COMPLETED,
    PREEMPTED,
    TERMINAL_STATES,
    AdmissionPolicy,
    ArchiveService,
    FairShare,
    SchedulerConfig,
)
from repro.scheduler.scenario import build_site
from repro.sim import Environment
from repro.workloads.generators import preload_tree

MB = 1_000_000


def small_cfg():
    return PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0,
                        stat_batch=8, copy_batch=4)


# ---------------------------------------------------------------------------
# no starvation (stride accountant in isolation: many examples)
# ---------------------------------------------------------------------------

@st.composite
def _backlogs(draw):
    n = draw(st.integers(2, 6))
    weights = [draw(st.floats(0.25, 8.0)) for _ in range(n)]
    pending = [draw(st.integers(1, 12)) for _ in range(n)]
    costs = [draw(st.floats(1.0, 6.0)) for _ in range(n)]
    return weights, pending, costs


@given(_backlogs())
@settings(max_examples=100, deadline=None)
def test_no_starvation_under_fair_share(backlog):
    """Serving min-vtime drains every backlogged tenant: no tenant with
    pending work waits more than (total pending) dispatches."""
    weights, pending, costs = backlog
    fs = FairShare()
    names = [f"t{i}" for i in range(len(weights))]
    for name, w in zip(names, weights):
        fs.add_tenant(name, w)
    left = dict(zip(names, pending))
    total = sum(pending)
    served = 0
    while any(left.values()):
        backlogged = [n for n in names if left[n] > 0]
        pick = fs.pick(backlogged)
        assert pick in backlogged
        fs.charge(pick, costs[names.index(pick)])
        left[pick] -= 1
        served += 1
        assert served <= total, "dispatch loop failed to drain the backlog"
    assert served == total


# ---------------------------------------------------------------------------
# end-to-end harness
# ---------------------------------------------------------------------------

@st.composite
def _service_run(draw):
    n_tenants = draw(st.integers(2, 3))
    weights = [draw(st.sampled_from([1.0, 2.0, 3.0]))
               for _ in range(n_tenants)]
    n_jobs = draw(st.integers(2, 6))
    jobs = []
    for k in range(n_jobs):
        jobs.append({
            "tenant": draw(st.integers(0, n_tenants - 1)),
            "at": draw(st.floats(0.0, 0.5)),
            "priority": draw(st.integers(0, 2)),
            "files": draw(st.integers(1, 2)),
        })
    # (time, job_index, kind) disturbances; may hit already-finished jobs
    n_chaos = draw(st.integers(0, 3))
    chaos = [
        (draw(st.floats(0.05, 1.5)), draw(st.integers(0, n_jobs - 1)),
         draw(st.sampled_from(["cancel", "preempt"])))
        for _ in range(n_chaos)
    ]
    return weights, jobs, chaos


def _run_service(weights, jobs, chaos):
    """Run one randomized service session to drain; returns the service."""
    env = Environment()
    system = build_site(env)
    service = ArchiveService(system, SchedulerConfig(
        policy=AdmissionPolicy(slots_per_node=12, max_active_jobs=2),
        default_cfg=small_cfg(),
    ))
    for i, w in enumerate(weights):
        service.add_tenant(f"t{i}", weight=w)
    for k, job in enumerate(jobs):
        preload_tree(system.scratch_fs, f"/jobs/{k}",
                     [2 * MB] * job["files"])
    tickets = {}

    def feeder():
        for k, job in sorted(enumerate(jobs), key=lambda kv: kv[1]["at"]):
            delay = job["at"] - env.now
            if delay > 0:
                yield env.timeout(delay)
            tickets[k] = service.submit(
                f"t{job['tenant']}", "archive", f"/jobs/{k}", f"/arc/{k}",
                priority=job["priority"],
            )

    def disturber():
        for at, k, kind in sorted(chaos):
            if at > env.now:
                yield env.timeout(at - env.now)
            ticket = tickets.get(k)
            if ticket is None:
                continue
            if kind == "cancel":
                service.cancel(ticket.job_id)
            else:
                service.preempt(ticket.job_id)

    resumed_ids = set()

    def resumer():
        # resume every preemption until none are parked (each resumed
        # ticket may itself be preempted again by a later disturbance)
        while True:
            yield env.timeout(0.2)
            parked = [
                t for t in list(service._tickets.values())
                if t.state == PREEMPTED and t.job_id not in resumed_ids
            ]
            for t in parked:
                resumed_ids.add(t.job_id)
                service.resume(t.job_id)
            if not parked and service.in_flight == 0 and len(tickets) == len(jobs):
                return

    env.process(feeder())
    env.process(disturber())
    env.process(resumer())
    env.run()
    return service


@given(_service_run())
@settings(max_examples=12, deadline=None)
def test_conservation_submitted_equals_terminal(run):
    """submitted == completed + cancelled + preempted at drain, every
    ticket terminal, and every preemption resumable work is conserved."""
    weights, jobs, chaos = run
    service = _run_service(weights, jobs, chaos)
    s = service.summary()
    assert s["queued"] == 0 and s["active"] == 0
    assert s["submitted"] == (
        s["completed"] + s["cancelled"] + s["preempted"]
    )
    for t in service._tickets.values():
        assert t.state in TERMINAL_STATES
        assert t.done.triggered
    # load fully released on the FTA pool
    assert service.system.loadmanager.total_load == 0
    # every job that COMPLETED landed its files
    for ticket in service._tickets.values():
        if ticket.state == COMPLETED:
            assert ticket.stats is not None
            assert ticket.stats.files_failed == 0


@given(_service_run())
@settings(max_examples=8, deadline=None)
def test_same_seed_dispatch_order_deterministic(run):
    """The same submission/chaos schedule replayed from scratch yields a
    byte-identical dispatch order and summary."""
    weights, jobs, chaos = run
    a = _run_service(weights, jobs, chaos)
    b = _run_service(weights, jobs, chaos)
    assert a.dispatch_log == b.dispatch_log
    assert a.summary() == b.summary()
    assert a.deviation_samples == b.deviation_samples
