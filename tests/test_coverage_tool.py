"""Smoke tests for the stdlib line-coverage tool (repro.analysis.coverage)."""

import textwrap

from repro.analysis.coverage import LineCoverage, executable_lines


def test_executable_lines_skip_comments_and_blanks(tmp_path):
    mod = tmp_path / "m.py"
    mod.write_text(textwrap.dedent("""\
        # a comment
        x = 1

        def f(a):
            # inner comment
            return a + x
    """))
    lines = executable_lines(str(mod))
    assert 2 in lines   # x = 1
    assert 4 in lines   # def f
    assert 6 in lines   # return
    assert 1 not in lines and 3 not in lines and 5 not in lines


def test_line_coverage_records_only_tree_under_root(tmp_path):
    mod = tmp_path / "probe.py"
    mod.write_text("def hit(flag):\n    if flag:\n        return 1\n    return 2\n")
    ns = {}
    exec(compile(mod.read_text(), str(mod), "exec"), ns)

    cov = LineCoverage(str(tmp_path))
    cov.start()
    try:
        ns["hit"](True)
    finally:
        cov.stop()
    hits = cov.hits[str(mod)]
    assert {2, 3} <= hits
    assert 4 not in hits  # the untaken branch

    report = cov.report()
    total = report["total"]
    assert total["lines"] >= 4
    assert 0 < total["covered"] <= total["lines"]
    assert report["packages"]["(root)"]["covered"] == total["covered"]
