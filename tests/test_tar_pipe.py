"""Tests for PFTool's §7 grass-files (tar-pipe) small-file packing."""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.workloads import small_file_flood

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env, **over):
    kw = dict(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0005,
    )
    kw.update(over)
    return ParallelArchiveSystem(env, ArchiveParams(**kw))


def seed_small(env, system, n, size=64 * KB):
    def go():
        system.scratch_fs.mkdir("/grass", parents=True)
        for i in range(n):
            yield system.scratch_fs.write_file(
                "scratch", f"/grass/g{i:05d}", size
            )

    env.run(env.process(go()))


def cfg(pack, **over):
    kw = dict(num_workers=4, num_readdir=1, num_tapeprocs=2,
              stat_batch=32, copy_batch=16, tar_pipe=pack)
    kw.update(over)
    return PftoolConfig(**kw)


def test_packed_archive_creates_members_and_containers():
    env = Environment()
    system = small_site(env)
    seed_small(env, system, 40)
    stats = env.run(system.archive("/grass", "/a", cfg(True)).done)
    assert stats.files_copied == 40
    # members exist with the right identity
    for i in range(40):
        m = system.archive_fs.lookup(f"/a/g{i:05d}")
        assert m.size == 64 * KB
        assert "__packed_in__" in m.xattrs
        src = system.scratch_fs.lookup(f"/grass/g{i:05d}")
        assert m.content_token == src.content_token
    # containers hold the actual bytes: 40 files / 16 per batch -> 3
    containers = [
        p for p, n in system.archive_fs.walk("/a")
        if n.is_file and ".pftar_" in p
    ]
    assert len(containers) == 3
    total = sum(system.archive_fs.lookup(c).size for c in containers)
    assert total == 40 * 64 * KB


def test_packed_mode_faster_for_many_tiny_files():
    def run(pack):
        env = Environment()
        system = small_site(env)
        seed_small(env, system, 120, size=16 * KB)
        stats = env.run(system.archive("/grass", "/a", cfg(pack)).done)
        return stats.duration

    t_plain = run(False)
    t_packed = run(True)
    assert t_packed < t_plain * 0.6


def test_packed_members_roundtrip_resident():
    env = Environment()
    system = small_site(env)
    seed_small(env, system, 20)
    env.run(system.archive("/grass", "/a", cfg(True)).done)
    stats = env.run(system.retrieve("/a", "/back", cfg(False)).done)
    assert stats.files_copied == 20
    for i in range(20):
        back = system.scratch_fs.lookup(f"/back/g{i:05d}")
        src = system.scratch_fs.lookup(f"/grass/g{i:05d}")
        assert back.size == src.size
        assert back.content_token == src.content_token


def test_packed_members_roundtrip_through_tape():
    """Members survive container migration: retrieve recalls the container
    ONCE and fans members out of it."""
    env = Environment()
    system = small_site(env)
    seed_small(env, system, 20)
    env.run(system.archive("/grass", "/a", cfg(True)).done)
    report = env.run(system.migrate_to_tape())
    # only the containers migrated (members are namespace-only)
    assert report.files == 2  # 20 files / 16 per batch -> 2 containers
    recalls_before = system.tsm.bytes_retrieved
    stats = env.run(system.retrieve("/a", "/back", cfg(False)).done)
    assert stats.files_copied == 20
    assert stats.tape_files_restored == 2  # containers, not members
    for i in range(20):
        back = system.scratch_fs.lookup(f"/back/g{i:05d}")
        src = system.scratch_fs.lookup(f"/grass/g{i:05d}")
        assert back.content_token == src.content_token
    assert system.tsm.bytes_retrieved - recalls_before == 20 * 64 * KB


def test_packed_migration_single_tape_object_per_container():
    env = Environment()
    system = small_site(env, n_tape_drives=1)
    seed_small(env, system, 32)
    env.run(system.archive("/grass", "/a", cfg(True)).done)
    bh0 = system.library.total_backhitches
    env.run(system.migrate_to_tape())
    # 32 files / 16 per batch = 2 containers = 2 tape transactions
    assert system.library.total_backhitches - bh0 == 2


def test_pfcm_compare_works_on_packed_archive():
    env = Environment()
    system = small_site(env)
    seed_small(env, system, 10)
    env.run(system.archive("/grass", "/a", cfg(True)).done)
    stats = env.run(system.compare("/grass", "/a", cfg(False)).done)
    assert stats.files_compared == 10
    assert stats.compare_mismatches == 0
