"""Tests for metrics helpers and the baseline implementations."""

import numpy as np
import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.baselines import GpfsNativeMigrator, SerialArchiver
from repro.metrics import (
    comparison_table,
    describe,
    geometric_mean,
    log10_histogram,
    render_series,
)
from repro.pfs import ListRule
from repro.sim import Environment
from repro.tapesim import TapeSpec

MB = 1_000_000
GB = 1_000_000_000

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env, **over):
    kw = dict(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0002,
    )
    kw.update(over)
    return ParallelArchiveSystem(env, ArchiveParams(**kw))


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

def test_describe_basic():
    d = describe([1, 2, 3, 4])
    assert d["count"] == 4
    assert d["min"] == 1
    assert d["max"] == 4
    assert d["mean"] == 2.5
    assert d["median"] == 2.5


def test_describe_empty():
    d = describe([])
    assert d["count"] == 0
    assert d["mean"] == 0.0


def test_geometric_mean():
    assert geometric_mean([1, 100]) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        geometric_mean([0, 1])
    assert geometric_mean([]) == 0.0


def test_log10_histogram_counts_everything():
    counts, edges = log10_histogram([1, 10, 100, 1000], bins=3)
    assert counts.sum() == 4
    with pytest.raises(ValueError):
        log10_histogram([0, 1])


def test_render_series_text():
    text = render_series("Figure 8", [1, 10, 100], unit=" files", log10=True)
    assert "Figure 8" in text
    assert "min=1" in text
    assert "log10" in text


def test_comparison_table_ratio():
    table = comparison_table([("rate MB/s", 575.0, 600.0)])
    assert "rate MB/s" in table
    assert "1.043" in table


# ---------------------------------------------------------------------------
# serial archiver baseline
# ---------------------------------------------------------------------------

def test_serial_archiver_single_stream_rate():
    """Store-and-forward over one GigE NIC: ~62 MB/s, the paper's foil."""
    env = Environment()
    system = small_site(env)
    mover = SerialArchiver.attach_mover(system)

    def setup():
        system.scratch_fs.mkdir("/d", parents=True)
        for i in range(4):
            yield system.scratch_fs.write_file("scratch", f"/d/f{i}", 500 * MB)

    env.run(env.process(setup()))
    serial = SerialArchiver(env, system.scratch_fs, system.archive_fs, mover)
    res = env.run(serial.archive_tree("/d", "/a"))
    assert res.files == 4
    assert res.bytes == 4 * 500 * MB
    # store-and-forward at 125 MB/s -> about 62 MB/s effective
    assert 45 * MB < res.rate < 75 * MB
    assert system.archive_fs.lookup("/a/f2").size == 500 * MB


def test_serial_vs_parallel_order_of_magnitude():
    """Figure 10's framing: 575 MB/s average vs ~70 MB/s serial."""
    env = Environment()
    system = small_site(env, n_fta=8)
    from repro.pftool import PftoolConfig

    def setup():
        system.scratch_fs.mkdir("/d", parents=True)
        for i in range(16):
            yield system.scratch_fs.write_file("scratch", f"/d/f{i}", 500 * MB)

    env.run(env.process(setup()))
    job = system.archive(
        "/d", "/a",
        PftoolConfig(num_workers=16, num_readdir=1, num_tapeprocs=0),
    )
    stats = env.run(job.done)
    parallel_rate = stats.data_rate

    mover = SerialArchiver.attach_mover(system)
    serial = SerialArchiver(env, system.scratch_fs, system.archive_fs, mover)
    res = env.run(serial.archive_tree("/d", "/b"))
    assert parallel_rate / res.rate > 5


# ---------------------------------------------------------------------------
# native migrator baseline
# ---------------------------------------------------------------------------

def _candidates(env, system, sizes):
    def setup():
        system.archive_fs.mkdir("/p", parents=True)
        for i, s in enumerate(sizes):
            yield system.archive_fs.write_file("fta0", f"/p/f{i}", s)

    env.run(env.process(setup()))
    res = env.run(
        system.archive_fs.policy.apply(
            [ListRule("c", "cand", lambda p, i, now: i.is_file and i.size > 0)]
        )
    )
    return res.lists["cand"]


def test_native_round_robin_is_size_oblivious():
    env = Environment()
    system = small_site(env)
    hits = _candidates(env, system, [100 * MB] * 2 + [1 * MB] * 2)
    buckets = GpfsNativeMigrator.partition_round_robin(
        hits, ["n0", "n1"]
    )
    byte_loads = sorted(
        sum(h.inode.size for h in b) for b in buckets.values()
    )
    # scan order alternates: one node gets both big files' worth? No —
    # round robin in scan order: n0={f0,f2}, n1={f1,f3} -> 101MB each.
    # Use an adversarial order instead:
    hits_sorted = sorted(hits, key=lambda h: -h.inode.size)
    interleaved = [hits_sorted[0], hits_sorted[2], hits_sorted[1], hits_sorted[3]]
    buckets = GpfsNativeMigrator.partition_round_robin(interleaved, ["n0", "n1"])
    byte_loads = sorted(sum(h.inode.size for h in b) for b in buckets.values())
    assert byte_loads[1] / byte_loads[0] > 10  # grossly unbalanced


def test_native_single_machine_mode_slower_than_balanced():
    def run(balanced):
        # files big enough that streaming dominates mount overhead —
        # the regime where spreading across machines pays off
        env = Environment()
        system = small_site(env)
        hits = _candidates(env, system, [6 * GB] * 12)
        if balanced:
            ev = system.migrator.migrate(hits)
        else:
            native = GpfsNativeMigrator(env, system.hsm, spread=False)
            ev = native.migrate(hits)
        report = env.run(ev)
        return report.duration

    t_native = run(False)
    t_balanced = run(True)
    assert t_balanced < t_native


def test_native_migrator_still_migrates_everything():
    env = Environment()
    system = small_site(env)
    hits = _candidates(env, system, [10 * MB] * 6)
    native = GpfsNativeMigrator(env, system.hsm, spread=True)
    report = env.run(native.migrate(hits))
    assert report.files == 6
    for h in hits:
        assert system.archive_fs.lookup(h.path).is_stub
