"""Tests for the table engine and the tape index DB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.tapedb import Table, TapeIndexDB, TapeLocation


# ---------------------------------------------------------------------------
# table engine
# ---------------------------------------------------------------------------

def make_table():
    t = Table("t", columns=("id", "a", "b"), primary_key="id")
    t.create_index("by_a", ("a",))
    t.create_index("by_ab", ("a", "b"))
    return t


def test_insert_get_delete():
    t = make_table()
    t.insert({"id": 1, "a": "x", "b": 10})
    assert t.get(1) == {"id": 1, "a": "x", "b": 10}
    assert t.delete(1)
    assert t.get(1) is None
    assert not t.delete(1)


def test_duplicate_pk_rejected():
    t = make_table()
    t.insert({"id": 1, "a": "x", "b": 1})
    with pytest.raises(ValueError, match="duplicate key"):
        t.insert({"id": 1, "a": "y", "b": 2})


def test_schema_enforced():
    t = make_table()
    with pytest.raises(ValueError):
        t.insert({"id": 1, "a": "x"})  # missing b
    with pytest.raises(ValueError):
        t.insert({"id": 1, "a": "x", "b": 1, "z": 9})  # extra


def test_index_equality_lookup():
    t = make_table()
    for i in range(10):
        t.insert({"id": i, "a": "even" if i % 2 == 0 else "odd", "b": i})
    evens = t.select_eq("by_a", "even")
    assert sorted(r["id"] for r in evens) == [0, 2, 4, 6, 8]


def test_index_prefix_and_order():
    t = make_table()
    for i, b in enumerate([5, 3, 9, 1]):
        t.insert({"id": i, "a": "k", "b": b})
    rows = t.select_prefix("by_ab", "k")
    assert [r["b"] for r in rows] == [1, 3, 5, 9]  # key order


def test_index_range():
    t = make_table()
    for i in range(10):
        t.insert({"id": i, "a": "k", "b": i})
    rows = t.select_range("by_ab", lo=("k", 3), hi=("k", 7))
    assert [r["b"] for r in rows] == [3, 4, 5, 6]


def test_update_reindexes():
    t = make_table()
    t.insert({"id": 1, "a": "x", "b": 1})
    t.update(1, a="y")
    assert t.select_eq("by_a", "x") == []
    assert t.select_eq("by_a", "y")[0]["id"] == 1


def test_update_pk_change_rejected():
    t = make_table()
    t.insert({"id": 1, "a": "x", "b": 1})
    with pytest.raises(ValueError):
        t.update(1, id=2)


def test_create_index_backfills():
    t = Table("t", columns=("id", "a"), primary_key="id")
    t.insert({"id": 1, "a": "x"})
    idx = t.create_index("late", ("a",))
    assert len(idx) == 1
    assert t.select_eq("late", "x")[0]["id"] == 1


def test_scan_with_predicate():
    t = make_table()
    for i in range(5):
        t.insert({"id": i, "a": "k", "b": i})
    assert sorted(r["id"] for r in t.scan(lambda r: r["b"] >= 3)) == [3, 4]


def test_rows_returned_are_copies():
    t = make_table()
    t.insert({"id": 1, "a": "x", "b": 1})
    row = t.get(1)
    row["a"] = "mutated"
    assert t.get(1)["a"] == "x"


@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 5), st.integers(0, 5)),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_index_consistent_with_scan(ops):
    """Index lookups always agree with a full scan, under mixed ops."""
    t = make_table()
    present = set()
    for pk, a, b in ops:
        if pk in present:
            t.delete(pk)
            present.discard(pk)
        else:
            t.insert({"id": pk, "a": a, "b": b})
            present.add(pk)
    for a in range(6):
        via_index = sorted(r["id"] for r in t.select_eq("by_a", a))
        via_scan = sorted(r["id"] for r in t.scan(lambda r: r["a"] == a))
        assert via_index == via_scan


# ---------------------------------------------------------------------------
# tape index DB
# ---------------------------------------------------------------------------

def test_tapeindex_roundtrip_and_order():
    env = Environment()
    db = TapeIndexDB(env)
    db.upsert(1, "/a", "fs", "V1", 3, 100)
    db.upsert(2, "/b", "fs", "V1", 1, 200)
    db.upsert(3, "/c", "fs", "V2", 1, 300)
    assert db.location_of(1).volume == "V1"
    assert db.object_for_path("fs", "/b").object_id == 2
    vol1 = db.objects_on_volume("V1")
    assert [l.seq for l in vol1] == [1, 3]


def test_tapeindex_upsert_replaces():
    env = Environment()
    db = TapeIndexDB(env)
    db.upsert(1, "/a", "fs", "V1", 1, 100)
    db.upsert(1, "/a", "fs", "V9", 7, 100)
    assert db.location_of(1).volume == "V9"
    assert len(db) == 1


def test_tapeindex_locate_many_charges_time():
    env = Environment()
    db = TapeIndexDB(env, query_latency=0.01)
    db.upsert(1, "/a", "fs", "V1", 1, 100)

    res = env.run(db.locate_many("fs", ["/a", "/missing"]))
    assert res["/a"].seq == 1
    assert res["/missing"] is None
    assert env.now >= 0.01
    assert db.queries == 1


def test_sort_tape_order_groups_and_sorts():
    locs = [
        TapeLocation(1, "/a", "fs", "V2", 2, 1),
        TapeLocation(2, "/b", "fs", "V1", 9, 1),
        TapeLocation(3, "/c", "fs", "V2", 1, 1),
        TapeLocation(4, "/d", "fs", "V1", 4, 1),
    ]
    ordered = TapeIndexDB.sort_tape_order(locs)
    assert list(ordered) == ["V1", "V2"]
    assert [l.seq for l in ordered["V1"]] == [4, 9]
    assert [l.seq for l in ordered["V2"]] == [1, 2]


# -- streaming regression: the recall sort must not materialise ----------

def test_recall_order_is_lazy_and_bounded():
    """Regression for the full-sorted-copy recall path.

    Consuming only the head of ``iter_recall_order`` must touch at most
    one batch per shard — the old implementation sorted the whole index
    up front, which at 10^7-10^8 files is the metadata-plane wall the
    M* benchmarks measure.
    """
    from repro.tapedb import BufferGauge, ShardedTapeIndex

    env = Environment()
    pop, shards, batch = 5000, 4, 16
    db = ShardedTapeIndex(env, n_shards=shards, cache_entries=0)
    db.bulk_load(
        {
            "object_id": i + 1,
            "path": f"/f{i}",
            "filespace": "fs",
            "volume": f"V{i % 40:03d}",
            "seq": i // 40,
            "nbytes": 1,
        }
        for i in range(pop)
    )
    gauge = BufferGauge()
    it = db.iter_recall_order(batch=batch, gauge=gauge)
    head = [next(it) for _ in range(batch)]
    assert len(head) == batch
    # only the cursors' working batches are live, not the population
    assert gauge.peak <= shards * batch
    assert gauge.peak < 0.10 * pop
    it.close()

    # monolithic index: same laziness through the same cursor machinery
    mono = TapeIndexDB(env)
    mono.bulk_load(
        {
            "object_id": i + 1,
            "path": f"/f{i}",
            "filespace": "fs",
            "volume": f"V{i % 40:03d}",
            "seq": i // 40,
            "nbytes": 1,
        }
        for i in range(pop)
    )
    g2 = BufferGauge()
    it2 = mono.iter_recall_order(batch=batch, gauge=g2)
    assert next(it2).volume == "V000"
    assert g2.peak <= batch
    it2.close()


def test_bulk_load_matches_upserts():
    env = Environment()
    a, b = TapeIndexDB(env), TapeIndexDB(env)
    rows = [
        {"object_id": i + 1, "path": f"/f{i % 5}", "filespace": "fs",
         "volume": f"V{i % 3}", "seq": i, "nbytes": 10 * i}
        for i in range(30)
    ]
    for r in rows:
        a.upsert(r["object_id"], r["path"], r["filespace"], r["volume"],
                 r["seq"], r["nbytes"])
    assert b.bulk_load(rows) == 30
    assert list(a.iter_recall_order()) == list(b.iter_recall_order())
    with pytest.raises(Exception):
        b.bulk_load([rows[0]])  # duplicate object id
