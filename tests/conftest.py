"""Shared test fixtures.

Every PftoolJob constructed during the test run gets a *strict*
:class:`~repro.analysis.monitor.InvariantMonitor`: a broken message
invariant (leaked receive, schema drift, lost work, unread mailboxes)
raises InvariantViolation inside the test instead of silently skewing
results.  Tests that need an unmonitored job pass an explicit
``RuntimeContext(monitor=...)`` or clear the factory themselves.
"""

from __future__ import annotations

import pytest

from repro.analysis.monitor import InvariantMonitor, set_default_monitor_factory


@pytest.fixture(autouse=True)
def strict_invariant_monitor():
    set_default_monitor_factory(lambda: InvariantMonitor(strict=True))
    yield
    set_default_monitor_factory(None)
