"""Property-based tests for the tape index's recall-ordering contract.

``TapeIndexDB.sort_tape_order`` is the heart of PFTool's ordered recall
(§4.1.2): whatever batch of file locations a lookup returns, the
arrangement handed to TapeProcs must be (a) a permutation of the input,
(b) grouped by volume with volumes in sorted order, and (c) ascending in
tape sequence within each volume — with ties kept in input order (stable
sort), so equal-seq aggregate members recall in deterministic order.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tapedb.tapeindex import TapeIndexDB, TapeLocation

volumes = st.sampled_from([f"A{i:05d}" for i in range(6)])

locations = st.builds(
    TapeLocation,
    object_id=st.integers(min_value=1, max_value=10**6),
    path=st.text(
        alphabet=st.characters(codec="ascii", exclude_characters="\0"),
        min_size=1, max_size=20,
    ).map(lambda s: "/" + s),
    filespace=st.just("archive"),
    volume=volumes,
    seq=st.integers(min_value=1, max_value=50),
    nbytes=st.integers(min_value=0, max_value=10**12),
)

batches = st.lists(locations, max_size=200)


@given(batches)
@settings(max_examples=200)
def test_sort_tape_order_is_a_permutation(batch):
    out = TapeIndexDB.sort_tape_order(batch)
    flat = [loc for vol_locs in out.values() for loc in vol_locs]
    assert Counter(id(l) for l in flat) == Counter(id(l) for l in batch)


@given(batches)
@settings(max_examples=200)
def test_sort_tape_order_groups_and_sorts(batch):
    out = TapeIndexDB.sort_tape_order(batch)
    # volumes appear in sorted order, no empty or foreign groups
    assert list(out) == sorted({loc.volume for loc in batch})
    for vol, vol_locs in out.items():
        assert vol_locs, f"empty group {vol}"
        assert all(loc.volume == vol for loc in vol_locs)
        seqs = [loc.seq for loc in vol_locs]
        assert seqs == sorted(seqs)


@given(batches)
@settings(max_examples=200)
def test_sort_tape_order_is_stable(batch):
    """Equal (volume, seq) entries keep their input order — the sort must
    be a *stable* sort by (volume, seq), nothing stronger."""
    out = TapeIndexDB.sort_tape_order(batch)
    for vol, vol_locs in out.items():
        input_order = {
            id(loc): i for i, loc in enumerate(batch) if loc.volume == vol
        }
        by_seq: dict[int, list[int]] = {}
        for loc in vol_locs:
            by_seq.setdefault(loc.seq, []).append(input_order[id(loc)])
        for seq, positions in by_seq.items():
            assert positions == sorted(positions), (
                f"ties on {vol}/seq={seq} reordered: {positions}"
            )


@given(batches)
@settings(max_examples=50)
def test_sort_tape_order_matches_reference_sort(batch):
    """Whole-output oracle: flattening the groups equals one stable sort
    of the input by (volume, seq)."""
    out = TapeIndexDB.sort_tape_order(batch)
    flat = [loc for vol_locs in out.values() for loc in vol_locs]
    ref = sorted(
        range(len(batch)), key=lambda i: (batch[i].volume, batch[i].seq)
    )
    assert [id(l) for l in flat] == [id(batch[i]) for i in ref]
