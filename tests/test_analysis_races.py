"""Unit and property tests for the schedule sanitizer.

Covers the vector-clock algebra, wait-for-graph cycle detection, the
happens-before conflict core on hand-built simulations, deadlock/stall
findings, and the permutation gate: K1 golden scenarios must produce
byte-identical headlines under seeded same-instant permutations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.races import (
    RaceDetector,
    VectorClock,
    classify_headline_key,
    derive_seed,
    find_cycles,
    sanitize_scenario,
    split_headline,
)
from repro.analysis.races.permute import _run_scenario
from repro.sim import Environment, Resource, Store


# ------------------------------------------------------------ vector clocks
def test_vector_clock_tick_is_per_pid_monotone():
    vc = VectorClock()
    assert vc.tick(1) == 1
    assert vc.tick(1) == 2
    assert vc.tick(2) == 1
    assert vc.get(1) == 2
    assert vc.get(2) == 1
    assert vc.get(99) == 0


def test_vector_clock_merge_takes_componentwise_max():
    a, b = VectorClock(), VectorClock()
    a.tick(1), a.tick(1), a.tick(3)
    b.tick(1), b.tick(2)
    a.merge(b.c)
    assert a.get(1) == 2 and a.get(2) == 1 and a.get(3) == 1


def test_vector_clock_observe_never_rewinds():
    vc = VectorClock()
    vc.observe(5, 7)
    assert vc.get(5) == 7
    vc.observe(5, 3)  # stale epoch must not rewind
    assert vc.get(5) == 7
    assert vc.dominates(5, 7)
    assert not vc.dominates(5, 8)


def test_vector_clock_compare_orders_and_concurrency():
    a, b = VectorClock(), VectorClock()
    assert a.compare(b) == 0
    a.tick(1)
    assert a.compare(b) == 1 and b.compare(a) == -1
    b.tick(2)
    assert a.compare(b) is None  # concurrent: neither dominates


def test_vector_clock_snapshot_drops_dead_pids():
    vc = VectorClock()
    vc.tick(1), vc.tick(2)
    snap = vc.snapshot(drop={2})
    assert snap == {1: 1}
    snap[1] = 99
    assert vc.get(1) == 1  # snapshot is detached


# ------------------------------------------------------------- cycle finder
def test_find_cycles_reports_two_cycle():
    cycles = find_cycles({1: {2}, 2: {1}})
    assert len(cycles) == 1
    assert set(cycles[0]) == {1, 2}


def test_find_cycles_self_loop_and_acyclic():
    assert find_cycles({1: {1}}) == [[1]]
    # diamond: acyclic
    assert find_cycles({1: {2, 3}, 2: {4}, 3: {4}, 4: set()}) == []


def test_find_cycles_one_representative_per_knot():
    # two disjoint 2-cycles -> exactly two findings
    cycles = find_cycles({1: {2}, 2: {1}, 3: {4}, 4: {3}})
    assert sorted(set(c) == {1, 2} or set(c) == {3, 4} for c in cycles) == [
        True,
        True,
    ]


# --------------------------------------------------------- detector harness
def _detected_env():
    env = Environment()
    det = RaceDetector()
    det.bind(env)
    env.hb = det
    return env, det


def _pairs(det):
    return {
        (c["access_a"], c["access_b"])
        for c in det.report()["conflicts"]
    }


def test_same_instant_unordered_puts_conflict():
    env, det = _detected_env()
    store = Store(env)

    def writer(tag):
        yield env.timeout(1)
        store.put_nowait(tag)

    env.process(writer("a"), name="wa")
    env.process(writer("b"), name="wb")
    env.run()
    det.finalize()
    assert ("wa.put", "wb.put") in _pairs(det)
    assert det.report()["deadlocks"] == []


def test_different_instants_do_not_conflict():
    env, det = _detected_env()
    store = Store(env)

    def writer(tag, delay):
        yield env.timeout(delay)
        store.put_nowait(tag)

    env.process(writer("a", 1), name="wa")
    env.process(writer("b", 2), name="wb")
    env.run()
    det.finalize()
    assert det.report()["conflicts"] == []


def test_message_edge_orders_same_instant_accesses():
    """A consumed item carries the producer's clock: the consumer's next
    same-instant access to a store the producer also touched is ordered,
    not a conflict."""
    env, det = _detected_env()
    mail = Store(env)
    shared = Store(env)

    def producer():
        shared.put_nowait("p-first")
        mail.put_nowait("token")
        yield env.timeout(0)

    def consumer():
        yield mail.get()  # merges the producer's clock
        shared.put_nowait("c-second")

    env.process(producer(), name="prod")
    env.process(consumer(), name="cons")
    env.run()
    det.finalize()
    pairs = _pairs(det)
    # the ordered put/put pair must NOT be reported...
    assert ("prod.put", "cons.put") not in pairs
    assert ("cons.put", "prod.put") not in pairs
    # ...while the racy handoff itself (get posted before the clock
    # merge) is legitimately schedule-sensitive and may appear.


def test_abba_resource_deadlock_detected():
    env, det = _detected_env()
    ra, rb = Resource(env, capacity=1), Resource(env, capacity=1)

    def locker(first, second, name):
        req1 = first.request()
        yield req1
        yield env.timeout(1)
        yield second.request()  # never granted: classic ABBA

    env.process(locker(ra, rb, "p1"), name="p1")
    env.process(locker(rb, ra, "p2"), name="p2")
    env.run()
    det.finalize()
    assert len(det.deadlocks) == 1
    procs = {hop["process"] for hop in det.deadlocks[0]["cycle"]}
    assert procs == {"p1", "p2"}


def test_stall_detected_and_daemon_exempt():
    env, det = _detected_env()
    store = Store(env)

    def parked():
        yield store.get()  # nothing will ever put

    env.process(parked(), name="leaked-worker")
    env.process(parked(), name="service-loop", daemon=True)
    env.run()
    det.finalize()
    assert [s["process"] for s in det.stalls] == ["leaked-worker"]
    assert det.deadlocks == []  # a bare StoreGet is a stall, not a cycle


# ------------------------------------------------------------ permuter gate
def test_classify_headline_keys():
    assert classify_headline_key("files_copied") == "conserved"
    assert classify_headline_key("bytes_copied") == "conserved"
    assert classify_headline_key("end_time") == "timing"
    assert classify_headline_key("peak_in_flight") == "timing"
    cons, timing = split_headline({"jobs_done": 3, "end_time": 1.5})
    assert cons == {"jobs_done": 3} and timing == {"end_time": 1.5}


def test_derive_seed_is_deterministic_and_distinct():
    assert derive_seed(0, "fig8_proxy", 1) == derive_seed(0, "fig8_proxy", 1)
    seeds = {derive_seed(0, "fig8_proxy", k) for k in range(1, 11)}
    assert len(seeds) == 10
    assert derive_seed(0, "fig8_proxy", 1) != derive_seed(0, "fabric_churn", 1)


def test_k1_golden_headline_identical_under_ten_permutations():
    """The acceptance property: a K1 golden scenario's headline is
    byte-identical under 10 seeded same-instant permutations."""
    base, _ = _run_scenario("mpisim_fanout", None)
    for k in range(1, 11):
        perm, _ = _run_scenario("mpisim_fanout", derive_seed(0, "mpisim_fanout", k))
        assert perm == base, f"permutation {k} diverged"


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_headline_schedule_independence_property(seed):
    """Any tie-break seed whatsoever leaves the outcome untouched."""
    base, _ = _run_scenario("mpisim_fanout", None)
    perm, _ = _run_scenario("mpisim_fanout", seed)
    assert perm == base


def test_sanitize_scenario_full_pass_on_store_churn():
    report = sanitize_scenario("store_churn", permutations=2, seed=0)
    assert report["ok"] is True
    assert report["deadlocks"] == 0 and report["stalls"] == 0
    # the churn pump is all same-instant handoffs: conflicts must be
    # mapped (informational), proving the detector saw the traffic
    assert report["dynamic"]["conflict_signatures"] > 0
