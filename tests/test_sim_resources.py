"""Unit tests for Resource / Container / Store primitives."""

import pytest

from repro.sim import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    PriorityStore,
    Resource,
    SimulationError,
    Store,
)


def test_resource_capacity_enforced():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def user(i):
        with res.request() as req:
            yield req
            active.append(i)
            peak.append(len(active))
            yield env.timeout(10)
            active.remove(i)

    for i in range(5):
        env.process(user(i))
    env.run()
    assert max(peak) == 2
    assert env.now == 30  # 5 users, 2 at a time, 10s each -> ceil(5/2)*10


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(i):
        with res.request() as req:
            yield req
            order.append(i)
            yield env.timeout(1)

    for i in range(4):
        env.process(user(i))
    env.run()
    assert order == [0, 1, 2, 3]


def test_priority_resource_serves_low_priority_value_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def user(i, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(i)

    env.process(holder())
    env.process(user("low", 10, 1))
    env.process(user("high", 0, 2))
    env.run()
    assert order == ["high", "low"]


def test_resource_cancel_pending_request():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def fickle():
        req = res.request()
        yield env.timeout(1)
        req.cancel()

    def patient():
        with res.request() as req:
            yield req
            got.append(env.now)

    env.process(holder())
    env.process(fickle())
    env.process(patient())
    env.run()
    assert got == [10]


def test_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_container_put_get():
    env = Environment()
    c = Container(env, capacity=100, init=10)
    seen = []

    def consumer():
        yield c.get(30)
        seen.append(env.now)

    def producer():
        yield env.timeout(5)
        yield c.put(25)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert seen == [5]
    assert c.level == 5


def test_container_capacity_blocks_put():
    env = Environment()
    c = Container(env, capacity=10, init=10)
    done = []

    def producer():
        yield c.put(5)
        done.append(env.now)

    def consumer():
        yield env.timeout(3)
        yield c.get(7)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert done == [3]


def test_container_rejects_bad_amounts():
    env = Environment()
    c = Container(env, capacity=10)
    with pytest.raises(SimulationError):
        c.get(20)
    with pytest.raises(SimulationError):
        c.put(-1)
    with pytest.raises(SimulationError):
        Container(env, capacity=5, init=6)


def test_store_fifo():
    env = Environment()
    s = Store(env)
    out = []

    def producer():
        for i in range(3):
            yield s.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield s.get()
            out.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == [0, 1, 2]


def test_store_capacity_backpressure():
    env = Environment()
    s = Store(env, capacity=1)
    times = []

    def producer():
        for i in range(3):
            yield s.put(i)
            times.append(env.now)

    def consumer():
        while True:
            yield env.timeout(10)
            yield s.get()

    env.process(producer())
    env.process(consumer())
    env.run(until=100)
    assert times == [0, 10, 20]


def test_filter_store_selects_matching():
    env = Environment()
    s = FilterStore(env)
    got = []

    def consumer():
        item = yield s.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer():
        yield s.put(1)
        yield s.put(3)
        yield env.timeout(1)
        yield s.put(4)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [4]
    assert s.items == [1, 3]


def test_filter_store_nonblocking_other_getters():
    env = Environment()
    s = FilterStore(env)
    got = []

    def want(pred, tag):
        item = yield s.get(pred)
        got.append((tag, item))

    env.process(want(lambda x: x == "b", "first"))
    env.process(want(lambda x: x == "a", "second"))

    def producer():
        yield s.put("a")
        yield s.put("b")

    env.process(producer())
    env.run()
    assert sorted(got) == [("first", "b"), ("second", "a")]


def test_priority_store_orders_items():
    env = Environment()
    s = PriorityStore(env)
    out = []

    def producer():
        yield s.put((3, 0, "c"))
        yield s.put((1, 1, "a"))
        yield s.put((2, 2, "b"))

    def consumer():
        yield env.timeout(1)
        for _ in range(3):
            item = yield s.get()
            out.append(item[2])

    env.process(producer())
    env.process(consumer())
    env.run()
    assert out == ["a", "b", "c"]


def test_store_len():
    env = Environment()
    s = Store(env)

    def producer():
        yield s.put("x")
        yield s.put("y")

    env.process(producer())
    env.run()
    assert len(s) == 2


def test_store_put_nowait():
    env = Environment()
    s = Store(env, capacity=2)
    assert s.put_nowait("a")
    assert s.put_nowait("b")
    assert not s.put_nowait("c")  # full: caller must fall back to put()
    assert s.items == ["a", "b"]

    got = []

    def consumer():
        got.append((yield s.get()))

    env.process(consumer())
    env.run()
    assert got == ["a"]
    assert s.put_nowait("c")  # a slot freed up
    assert s.items == ["b", "c"]


def test_store_put_nowait_wakes_parked_getter():
    env = Environment()
    s = FilterStore(env)
    got = []

    def consumer():
        got.append((yield s.get(lambda m: m == "hit")))

    def producer():
        yield env.timeout(1)
        assert s.put_nowait("hit")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == ["hit"]


def test_cancelled_get_is_never_delivered_an_item():
    """A cancelled getter must be swept before _do_get can feed it (the
    WatchDog lost-Exit bug): the item must go to the live getter behind it."""
    env = Environment()
    s = FilterStore(env)
    got = []

    def first():
        ev = s.get()
        yield env.timeout(1)
        ev.cancel()
        yield env.timeout(10)

    def second():
        yield env.timeout(2)
        got.append((yield s.get()))

    def producer():
        yield env.timeout(3)
        yield s.put("msg")

    env.process(first())
    env.process(second())
    env.process(producer())
    env.run()
    assert got == ["msg"]


def test_mass_cancel_parked_gets_is_near_linear():
    """Regression for the O(n) StoreGet.cancel: cancelling 10k parked
    receives must scale ~linearly (tombstones + compaction), not
    quadratically (the old list.remove walked 10k entries per cancel)."""
    import time

    def run_n(n):
        env = Environment()
        s = FilterStore(env)
        gets = [s.get(lambda m, i=i: m == i) for i in range(n)]
        t0 = time.perf_counter()
        for g in gets:
            g.cancel()
        elapsed = time.perf_counter() - t0
        # queue must actually shrink as tombstones pass the compaction
        # threshold, not merely be marked dead
        assert len(s._getq) <= 1 + n // 2
        # a fresh put still routes to a live getter afterwards
        got = []

        def consumer():
            got.append((yield s.get()))

        env.process(consumer())
        assert s.put_nowait("tail")
        env.run()
        assert got == ["tail"]
        return elapsed

    t_small = max(run_n(1_000), 1e-4)
    t_big = run_n(10_000)
    # 10x the cancels may cost ~10x the time (plus noise) — the old
    # quadratic implementation came in around 100x
    assert t_big < t_small * 40, f"cancel scaling looks quadratic: {t_small} -> {t_big}"
