"""Runtime InvariantMonitor tests.

The centrepiece re-breaks the WatchDog's receive handling (drops the
``.cancel()`` call that fixed the leaked-receive bug) and shows the
monitor catching it the moment the second receive is posted — the
mechanical regression guard the static RA005 rule mirrors.
"""

import doctest
from collections import deque
from types import SimpleNamespace
from typing import Optional

import pytest

import repro.pftool.job as job_mod
import repro.sim.rng as rng_mod
from repro.analysis.monitor import InvariantMonitor, InvariantViolation
from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.mpisim import SimComm
from repro.pftool import PftoolConfig
from repro.pftool.messages import Exit, TAG_JOB, WorkRequest
from repro.pftool.stats import JobStats, WatchdogSample
from repro.sim import Environment
from repro.tapesim import TapeSpec

GB = 1_000_000_000
MB = 1_000_000

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env, **over):
    kw = dict(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0002,
    )
    kw.update(over)
    return ParallelArchiveSystem(env, ArchiveParams(**kw))


def seed_scratch(env, system, layout):
    def go():
        for path, size in layout.items():
            parent = path.rsplit("/", 1)[0] or "/"
            system.scratch_fs.mkdir(parent, parents=True)
            yield system.scratch_fs.write_file("scratch", path, size)

    env.run(env.process(go()))


def attached_monitor(env, size=4, strict=True):
    """A strict monitor wired to a bare communicator (no job)."""
    comm = SimComm(env, size, latency=0.0)
    monitor = InvariantMonitor(strict=strict)
    job = SimpleNamespace(
        stats=JobStats(), env=env, comm=comm, live_ranks=set(range(size))
    )
    monitor.attach(job)
    return comm, monitor, job


# ----------------------------------------------- the re-broken watchdog
def broken_watchdog_proc(env, comm, rank, cfg, stats):
    """watchdog_proc with the historical leaked-receive bug restored:
    the losing receive is abandoned instead of cancelled."""
    last_files = 0
    last_bytes = 0
    stalled_since: Optional[float] = None
    while True:
        wake = env.timeout(cfg.watchdog_interval)
        incoming = comm.recv(rank)
        yield wake | incoming
        if incoming.triggered:
            if isinstance(incoming.value.payload, Exit):
                return
        # BUG (deliberate): no incoming.cancel() on the timer path
        files = stats.files_copied + stats.tape_files_restored
        nbytes = stats.bytes_copied + stats.tape_bytes_restored
        stats.watchdog_history.append(
            WatchdogSample(
                env.now, files, nbytes, files - last_files, nbytes - last_bytes
            )
        )
        last_files, last_bytes = files, nbytes


def test_monitor_catches_rebroken_watchdog(monkeypatch):
    """A leaked watchdog receive trips the monitor on the next recv."""
    monkeypatch.setattr(job_mod, "watchdog_proc", broken_watchdog_proc)
    env = Environment()
    system = small_site(env)
    layout = {f"/campaign/run{i}/out.dat": 50 * MB for i in range(4)}
    seed_scratch(env, system, layout)
    cfg = PftoolConfig(
        num_workers=4, num_readdir=1, num_tapeprocs=2,
        stat_batch=8, copy_batch=4, watchdog_interval=0.05,
    )
    job = system.archive("/campaign", "/archive/campaign", cfg)
    with pytest.raises(InvariantViolation, match="leaked-receive"):
        env.run(job.done)


def test_fixed_watchdog_passes_under_monitor():
    """Same job, shipped (cancelling) watchdog: clean run."""
    env = Environment()
    system = small_site(env)
    layout = {f"/campaign/run{i}/out.dat": 50 * MB for i in range(4)}
    seed_scratch(env, system, layout)
    cfg = PftoolConfig(
        num_workers=4, num_readdir=1, num_tapeprocs=2,
        stat_batch=8, copy_batch=4, watchdog_interval=0.05,
    )
    job = system.archive("/campaign", "/archive/campaign", cfg)
    mon = job.comm.monitor
    assert mon is not None and mon.attached_jobs == 1
    stats = env.run(job.done)
    assert stats.files_copied == 4
    assert mon.violations == []
    assert mon.sent > 0
    # completion detaches: a long-running service's monitor holds no
    # dead jobs (and the communicator drops its hook)
    assert job.comm.monitor is None
    assert mon.attached_jobs == 0


# -------------------------------------------------- per-invariant units
def test_leaked_receive_detected(monkeypatch):
    env = Environment()
    comm, monitor, _ = attached_monitor(env)
    comm.recv(2)
    with pytest.raises(InvariantViolation, match="leaked-receive"):
        comm.recv(2)


def test_cancelled_receive_is_not_leaked():
    env = Environment()
    comm, monitor, _ = attached_monitor(env)
    get = comm.recv(2)
    get.cancel()
    comm.recv(2)  # no violation
    assert monitor.violations == []


def test_consumed_receive_is_not_leaked():
    env = Environment()
    comm, monitor, _ = attached_monitor(env)

    def rank2():
        msg = yield comm.recv(2)
        assert isinstance(msg.payload, Exit)
        yield comm.recv(2)  # fresh receive after consuming: fine

    env.process(rank2())
    comm.send(0, 2, Exit(), TAG_JOB)
    env.run()
    assert monitor.violations == []


def test_payload_schema_violation_raises():
    env = Environment()
    comm, monitor, _ = attached_monitor(env)
    with pytest.raises(InvariantViolation, match="payload-schema"):
        comm.send(0, 3, ("src", "dst", 42), TAG_JOB)


def test_payload_schema_accepts_declared_family():
    env = Environment()
    comm, monitor, _ = attached_monitor(env)
    comm.send(3, 0, WorkRequest(3, "worker"), 1)  # TAG_WORK_REQ
    comm.send(0, 1, "progress line", 4)  # TAG_OUTPUT carries str
    assert monitor.violations == []


def test_queue_ownership_violation():
    env = Environment()
    comm, monitor, _ = attached_monitor(env)
    manager = SimpleNamespace(
        dir_q=deque(), name_q=deque(), copy_q=deque(), tape_q=deque()
    )

    def manager_proc():
        manager.dir_q.append("mine")  # owner writes: fine
        yield env.timeout(10)

    proc = env.process(manager_proc(), name="manager")
    monitor.bind_manager(manager, proc)

    def thief():
        yield env.timeout(1)
        manager.dir_q.append("stolen")

    env.process(thief(), name="thief")
    with pytest.raises(InvariantViolation, match="queue-ownership"):
        env.run()


def test_queue_mutation_outside_any_process_is_allowed():
    env = Environment()
    comm, monitor, _ = attached_monitor(env)
    manager = SimpleNamespace(
        dir_q=deque(), name_q=deque(), copy_q=deque(), tape_q=deque()
    )
    def idle():
        yield env.timeout(0)

    proc = env.process(idle(), name="manager")
    monitor.bind_manager(manager, proc)
    manager.dir_q.append("test-driver")  # no active process: allowed
    assert monitor.violations == []


def test_work_conservation_violation():
    env = Environment()
    comm, monitor, job = attached_monitor(env)
    job.stats.op = "copy"
    job.stats.files_seen = 3
    job.stats.files_copied = 1
    with pytest.raises(InvariantViolation, match="work-conservation"):
        monitor.check_completion(comm, job.stats)


def test_work_conservation_allows_container_overcount():
    env = Environment()
    comm, monitor, job = attached_monitor(env)
    job.stats.op = "copy"
    job.stats.files_seen = 3
    job.stats.files_copied = 3
    job.stats.files_failed = 1  # failed container: never in files_seen
    monitor.check_completion(comm, job.stats)
    assert monitor.violations == []


def test_message_conservation_violation():
    env = Environment()
    comm, monitor, job = attached_monitor(env)
    # tag 0 is outside TAG_PAYLOADS, so the schema check lets it through;
    # an unread non-Exit message at completion must still be flagged
    comm.send(2, 0, "stranded-result", 0)
    env.run()
    with pytest.raises(InvariantViolation, match="message-conservation"):
        monitor.check_completion(comm, job.stats)


def test_message_conservation_exempts_final_work_requests():
    env = Environment()
    comm, monitor, job = attached_monitor(env)
    comm.send(3, 0, WorkRequest(3, "worker"), 1)  # the worker's last ask
    comm.send(0, 3, Exit(), TAG_JOB)  # Exit to a terminated rank
    env.run()
    monitor.check_completion(comm, job.stats)
    assert monitor.violations == []


def test_non_strict_monitor_counts_into_stats():
    env = Environment()
    comm, monitor, job = attached_monitor(env, strict=False)
    comm.recv(2)
    comm.recv(2)
    assert monitor.violations
    assert job.stats.invariant_violations == {"leaked-receive": 1}
    assert job.stats.to_dict()["invariant_violations"] == {"leaked-receive": 1}


# ---------------------------------------------------------- rng doctest
def test_random_streams_spawn_doctest():
    results = doctest.testmod(rng_mod)
    assert results.attempted >= 5
    assert results.failed == 0
