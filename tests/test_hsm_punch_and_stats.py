"""Tests for HSM pool-pressure punching and JobStats serialization."""

import json

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pfs import HsmState
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.workloads import small_file_flood

MB = 1_000_000
GB = 1_000_000_000

SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env):
    return ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=4, n_disk_servers=2, n_tape_drives=4,
                      n_scratch_tapes=16, tape_spec=SPEC),
    )


def test_punch_until_frees_to_target():
    env = Environment()
    system = small_site(env)
    for arr in system.archive_fs.pool("fast").arrays:
        arr.capacity_bytes = 500 * MB  # 1 GB pool
    paths = small_file_flood(system.archive_fs, "/d", 8, 100 * MB)  # 80%
    env.run(system.migrate_to_tape(punch=False))  # premigrate only
    assert system.archive_fs.pool_occupancy("fast") == pytest.approx(0.8)

    punched = system.hsm.punch_until("fast", target_occupancy=0.3)
    assert system.archive_fs.pool_occupancy("fast") <= 0.3
    assert 5 <= len(punched) <= 6
    for p in punched:
        assert system.archive_fs.lookup(p).hsm_state is HsmState.MIGRATED
    # punching is instantaneous — no simulated time passed
    survivors = [p for p in paths if p not in punched]
    for p in survivors:
        assert system.archive_fs.lookup(p).hsm_state is HsmState.PREMIGRATED


def test_punch_until_lru_order():
    env = Environment()
    system = small_site(env)
    for arr in system.archive_fs.pool("fast").arrays:
        arr.capacity_bytes = 500 * MB
    paths = small_file_flood(system.archive_fs, "/d", 4, 100 * MB)
    env.run(system.migrate_to_tape(punch=False))
    # touch one file so it is the most recently used
    hot = paths[0]

    def touch():
        yield env.timeout(100.0)
        yield system.archive_fs.read_file("fta0", hot)

    env.run(env.process(touch()))
    punched = system.hsm.punch_until("fast", target_occupancy=0.25)
    assert hot not in punched  # LRU spares the hot file
    # 40% -> 20% takes exactly two 100 MB punches
    assert len(punched) == 2


def test_punch_until_noop_when_under_target():
    env = Environment()
    system = small_site(env)
    small_file_flood(system.archive_fs, "/d", 2, 1 * MB)
    assert system.hsm.punch_until("fast", 0.9) == []


def test_jobstats_to_dict_roundtrips_json():
    env = Environment()
    system = small_site(env)

    def seed():
        system.scratch_fs.mkdir("/d", parents=True)
        for i in range(4):
            yield system.scratch_fs.write_file("scratch", f"/d/f{i}", 5 * MB)

    env.run(env.process(seed()))
    cfg = PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0)
    stats = env.run(system.archive("/d", "/a", cfg).done)
    d = stats.to_dict()
    encoded = json.dumps(d)
    back = json.loads(encoded)
    assert back["files_copied"] == 4
    assert back["bytes_copied"] == 20 * MB
    assert back["op"] == "copy"
    assert back["data_rate"] == pytest.approx(stats.data_rate)
    assert not back["aborted"]
