"""Tests for trashcan, synchronous deleter, balanced migrator, chroot."""

import pytest

from repro.archive import ArchiveParams, CommandPolicy, ParallelArchiveSystem
from repro.archive.migrator import BalancedMigrator
from repro.hsm import ReconcileAgent
from repro.pfs.policy import PolicyHit
from repro.pfs.inode import FileKind, Inode
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec

GB = 1_000_000_000
MB = 1_000_000

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env, **over):
    kw = dict(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0002,
    )
    kw.update(over)
    return ParallelArchiveSystem(env, ArchiveParams(**kw))


def cfg_small():
    return PftoolConfig(num_workers=4, num_readdir=1, num_tapeprocs=2,
                        stat_batch=8, copy_batch=4)


def archive_files(env, system, layout):
    def go():
        for path, size in layout.items():
            parent = path.rsplit("/", 1)[0] or "/"
            system.archive_fs.mkdir(parent, parents=True)
            yield system.archive_fs.write_file("fta0", path, size)

    env.run(env.process(go()))


# ---------------------------------------------------------------------------
# trashcan + synchronous delete
# ---------------------------------------------------------------------------

def test_user_delete_goes_to_trashcan_and_undelete():
    env = Environment()
    system = small_site(env)
    archive_files(env, system, {"/proj/f": 5 * MB})
    system.user_delete("/proj/f", user="alice")
    assert not system.archive_fs.exists("/proj/f")
    assert len(system.trashcan) == 1
    assert system.undelete("/proj/f")
    assert system.archive_fs.exists("/proj/f")
    assert len(system.trashcan) == 0


def test_sweep_deletes_fs_and_tape_sides():
    env = Environment()
    system = small_site(env)
    archive_files(env, system, {"/proj/a": 5 * MB, "/proj/b": 5 * MB})
    env.run(system.migrate_to_tape())
    oid_a = system.archive_fs.lookup("/proj/a").tsm_object_id
    system.user_delete("/proj/a")
    n = env.run(system.sweep_trash())
    assert n == 1
    assert system.tsm.locate(oid_a) is None  # tape side gone: no orphan
    assert system.tapedb.location_of(oid_a) is None
    # /proj/b untouched
    assert system.tsm.locate(system.archive_fs.lookup("/proj/b").tsm_object_id)


def test_sweep_respects_min_age():
    env = Environment()
    system = small_site(env)
    archive_files(env, system, {"/proj/a": MB})
    system.user_delete("/proj/a")
    n = env.run(system.sweep_trash(min_age=3600.0))
    assert n == 0
    assert len(system.trashcan) == 1


def test_sweep_leaves_no_orphans_for_reconcile():
    """After sweeps, a reconcile pass finds zero orphans (the design goal)."""
    env = Environment()
    system = small_site(env)
    archive_files(env, system, {f"/p/f{i}": MB for i in range(6)})
    env.run(system.migrate_to_tape())
    for i in range(3):
        system.user_delete(f"/p/f{i}")
    env.run(system.sweep_trash())
    agent = ReconcileAgent(env, system.archive_fs, system.tsm)
    report = env.run(agent.run(delete_orphans=False))
    assert report.orphans_found == 0


def test_overwrite_orphan_swept():
    """§6.3: overwriting a migrated file strands its tape object —
    the system records and sweeps it without reconciliation."""
    env = Environment()
    system = small_site(env)
    archive_files(env, system, {"/p/f": MB})
    env.run(system.migrate_to_tape(punch=False))
    old_oid = system.archive_fs.lookup("/p/f").tsm_object_id
    env.run(system.archive_fs.write_file("fta0", "/p/f", 2 * MB))  # overwrite
    assert system.overwrite_orphans == [old_oid]
    n = env.run(system.sweep_trash())
    assert n == 1
    assert system.tsm.locate(old_oid) is None


def test_trash_on_migrated_file_preserves_object_until_sweep():
    env = Environment()
    system = small_site(env)
    archive_files(env, system, {"/p/f": MB})
    env.run(system.migrate_to_tape())
    oid = system.archive_fs.lookup("/p/f").tsm_object_id
    system.user_delete("/p/f")
    # before the sweep the tape copy still exists (undelete works)
    assert system.tsm.locate(oid) is not None
    assert system.undelete("/p/f")
    assert system.archive_fs.lookup("/p/f").tsm_object_id == oid


# ---------------------------------------------------------------------------
# balanced migrator
# ---------------------------------------------------------------------------

def _hits(sizes):
    out = []
    for i, s in enumerate(sizes):
        ino = Inode(FileKind.FILE, 0.0)
        ino.size = s
        out.append(PolicyHit(f"/f{i}", ino))
    return out


def test_lpt_partition_balances_bytes():
    hits = _hits([100, 90, 80, 10, 10, 10])
    buckets = BalancedMigrator.partition(hits, ["n0", "n1", "n2"])
    totals = sorted(sum(h.inode.size for h in b) for b in buckets.values())
    assert totals == [100, 100, 100]


def test_lpt_partition_single_node():
    hits = _hits([5, 3])
    buckets = BalancedMigrator.partition(hits, ["solo"])
    assert len(buckets["solo"]) == 2


def test_partition_requires_nodes():
    with pytest.raises(Exception):
        BalancedMigrator.partition(_hits([1]), [])


def test_migrate_to_tape_reports_assignment_and_low_skew():
    env = Environment()
    system = small_site(env)
    sizes = {f"/p/f{i}": (50 - 4 * i) * MB for i in range(10)}
    archive_files(env, system, sizes)
    report = env.run(system.migrate_to_tape())
    assert report.files == 10
    assert len(report.assignment) == 4
    assigned_bytes = [b for _, b in report.assignment.values()]
    assert max(assigned_bytes) - min(assigned_bytes) <= 50 * MB
    assert report.skew < report.duration


def test_migrate_excludes_trash_and_manifests():
    env = Environment()
    system = small_site(env)
    archive_files(env, system, {"/p/live": MB, "/p/doomed": MB})
    system.user_delete("/p/doomed")
    report = env.run(system.migrate_to_tape())
    assert report.files == 1  # only the live file


# ---------------------------------------------------------------------------
# chroot jail
# ---------------------------------------------------------------------------

def test_jail_allows_tape_aware_tools():
    policy = CommandPolicy()
    for cmd in ("pfls /archive", "pfcp /scratch/x /archive/x", "ls", "tar cf"):
        policy.check(cmd)


def test_jail_denies_grep():
    policy = CommandPolicy()
    with pytest.raises(PermissionError):
        policy.check("grep -r pattern /archive")
    assert not policy.is_allowed("egrep foo")
    assert not policy.is_allowed("python")


def test_jail_empty_command():
    assert not CommandPolicy().is_allowed("")


# ---------------------------------------------------------------------------
# loadmanager integration
# ---------------------------------------------------------------------------

def test_loadmanager_orders_nodes():
    env = Environment()
    system = small_site(env)
    lm = system.loadmanager
    first = lm.machine_list()
    lm.job_started([first[0], first[1]])
    reordered = lm.machine_list()
    assert reordered[0] not in (first[0], first[1])
    lm.job_finished([first[0], first[1]])
    assert lm.machine_list() == first
