"""Tests for HSM migration, recall routing, and reconciliation.

Key scenarios also run traced and assert causal properties (drive-mount
exclusivity, migrate-before-recall ordering) via
:class:`repro.trace.assertions.TraceAssertions`.
"""

import pytest

from repro.disksim import DiskArray
from repro.hsm import HsmManager, ReconcileAgent
from repro.pfs import GpfsFileSystem, HsmState, StoragePool
from repro.sim import Environment
from repro.tapesim import TapeLibrary, TapeSpec
from repro.trace import tracing
from repro.trace.assertions import TraceAssertions
from repro.tsm import TsmServer

SPEC = TapeSpec(
    native_rate=100e6,
    load_time=10.0,
    unload_time=10.0,
    rewind_full=50.0,
    seek_base=1.0,
    locate_rate=1e9,
    label_verify=5.0,
    backhitch=2.0,
    capacity=1000e9,
)


def build_stack(env, nodes=("fta0", "fta1"), n_drives=2, routing="naive"):
    fs = GpfsFileSystem(env, "archive", metadata_op_time=0.0)
    arrays = [
        DiskArray(env, f"arr{i}", capacity_bytes=1e14, bandwidth=500e6, seek_time=0.0)
        for i in range(2)
    ]
    fs.add_pool(StoragePool("fast", arrays), default=True)
    lib = TapeLibrary(env, n_drives=n_drives, spec=SPEC, n_scratch=16,
                      robot_exchange=5.0)
    tsm = TsmServer(env, lib, txn_time=0.005)
    hsm = HsmManager(env, fs, tsm, nodes=list(nodes), recall_routing=routing)
    return fs, tsm, hsm


def seed_files(env, fs, n, size, prefix="/data/f"):
    def go():
        fs.mkdir("/data")
        for i in range(n):
            yield fs.write_file("fta0", f"{prefix}{i}", size)

    env.run(env.process(go()))


def test_migrate_punches_stubs_and_frees_disk():
    with tracing() as tracer:
        env = Environment()
        fs, tsm, hsm = build_stack(env)
        seed_files(env, fs, 3, 10_000_000)
        pool = fs.pool("fast")
        assert pool.used_bytes == 30_000_000
        receipts = env.run(hsm.migrate("fta0", [f"/data/f{i}" for i in range(3)]))
    assert len(receipts) == 3
    for i in range(3):
        assert fs.lookup(f"/data/f{i}").hsm_state is HsmState.MIGRATED
    assert pool.used_bytes == 0
    assert hsm.files_migrated == 3
    # trace: one migrate span covering three tape stores, drive writes
    # strictly serialized per drive
    ta = TraceAssertions(tracer)
    ta.span_count("hsm:migrate", expect=1)
    ta.span_count("tsm:store", expect=3)
    ta.no_overlap("drive:write", per="tid")
    ta.no_overlap("drive:mounted", per="tid")
    assert tracer.metrics.counter("hsm.files_migrated").value == 3


def test_migrate_without_punch_premigrates():
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 1, 1_000_000)
    env.run(hsm.migrate("fta0", ["/data/f0"], punch=False))
    inode = fs.lookup("/data/f0")
    assert inode.hsm_state is HsmState.PREMIGRATED
    assert fs.pool("fast").used_bytes == 1_000_000


def test_migrate_skips_existing_stubs():
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 1, 1_000_000)
    env.run(hsm.migrate("fta0", ["/data/f0"]))
    receipts = env.run(hsm.migrate("fta0", ["/data/f0"]))
    assert receipts == []


def test_recall_restores_data():
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 1, 50_000_000)
    env.run(hsm.migrate("fta0", ["/data/f0"]))

    inode = env.run(hsm.recall("/data/f0"))
    assert inode.hsm_state is HsmState.PREMIGRATED
    assert fs.pool("fast").used_bytes == 50_000_000
    assert hsm.files_recalled == 1


def test_recall_of_resident_file_is_noop():
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 1, 1000)
    inode = env.run(hsm.recall("/data/f0"))
    assert inode.hsm_state is HsmState.RESIDENT
    assert hsm.files_recalled == 0


def test_transparent_recall_via_fs_read():
    """Reading a stub transparently recalls it (DMAPI integration)."""
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 1, 10_000_000)
    env.run(hsm.migrate("fta0", ["/data/f0"]))
    t0 = env.now
    _, token = env.run(fs.read_file("fta0", "/data/f0"))
    assert env.now > t0  # paid the tape locate + stream
    assert fs.recalls_triggered == 1
    assert hsm.files_recalled == 1


def test_aggregated_migration_faster_for_small_files():
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 30, 8_000_000)
    paths = [f"/data/f{i}" for i in range(30)]
    t0 = env.now
    env.run(hsm.migrate("fta0", paths[:15], aggregate=False))
    t_per_file = env.now - t0
    t0 = env.now
    env.run(hsm.migrate("fta0", paths[15:], aggregate=True))
    t_agg = env.now - t0
    assert t_per_file / t_agg > 3


def test_naive_routing_thrashes_sticky_does_not():
    """§6.2: same-tape recalls spread across nodes cause handoff rewinds."""

    def run(routing):
        with tracing() as tracer:
            env = Environment()
            fs, tsm, hsm = build_stack(env, routing=routing, n_drives=1)
            seed_files(env, fs, 12, 20_000_000)
            paths = [f"/data/f{i}" for i in range(12)]
            env.run(hsm.migrate("fta0", paths))  # all on one tape
            t0 = env.now
            env.run(hsm.recall_many(paths))
        # even with two recall daemons fighting over the single drive,
        # its operations and mount intervals never overlap, and every
        # migrate finished before any recall touched the volume
        ta = TraceAssertions(tracer)
        assert ta.span_count("hsm:recall") == 12
        ta.no_overlap("drive:mounted", per="tid")
        ta.no_overlap("drive:read", per="tid")
        ta.happens_before("hsm:migrate", "hsm:recall")
        return env.now - t0, tsm.library.total_handoff_rewinds

    t_naive, rw_naive = run("naive")
    t_sticky, rw_sticky = run("sticky")
    # sticky pays at most the single migrate->recall client switch;
    # naive pays a handoff on nearly every recall.
    assert rw_sticky <= 1
    assert rw_naive > rw_sticky + 5
    assert t_naive > t_sticky


def test_recall_failure_propagates_but_daemon_survives():
    env = Environment()
    fs, tsm, hsm = build_stack(env, nodes=("fta0",))
    seed_files(env, fs, 2, 1_000_000)
    env.run(hsm.migrate("fta0", ["/data/f0", "/data/f1"]))
    # sabotage one object
    inode = fs.lookup("/data/f0")
    env.run(tsm.delete_object(inode.tsm_object_id))
    with pytest.raises(Exception):
        env.run(hsm.recall("/data/f0"))
    # daemon must still serve the healthy file
    ok = env.run(hsm.recall("/data/f1"))
    assert ok.hsm_state is HsmState.PREMIGRATED


def test_invalid_configs():
    env = Environment()
    fs, tsm, _ = build_stack(env)
    with pytest.raises(Exception):
        HsmManager(env, fs, tsm, nodes=[])
    with pytest.raises(Exception):
        HsmManager(env, fs, tsm, nodes=["x"], recall_routing="psychic")


# ---------------------------------------------------------------------------
# reconcile
# ---------------------------------------------------------------------------

def test_reconcile_finds_and_deletes_orphans():
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 4, 1_000_000)
    paths = [f"/data/f{i}" for i in range(4)]
    env.run(hsm.migrate("fta0", paths))
    # delete two files from the FS only -> orphans on tape
    env.run(fs.unlink_op("/data/f0"))
    env.run(fs.unlink_op("/data/f1"))
    agent = ReconcileAgent(env, fs, tsm)
    report = env.run(agent.run())
    assert report.orphans_found == 2
    assert report.orphans_deleted == 2
    assert report.files_walked >= 3  # /, /data, two survivors
    # survivors still resolvable
    assert tsm.locate(fs.lookup("/data/f2").tsm_object_id) is not None


def test_reconcile_duration_scales_with_tree_size():
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 50, 1000)
    agent = ReconcileAgent(env, fs, tsm, per_file_cost=0.01)
    report = env.run(agent.run())
    assert report.duration >= 0.01 * 50
    assert report.orphans_found == 0


def test_reconcile_report_counts_tsm_side():
    env = Environment()
    fs, tsm, hsm = build_stack(env)
    seed_files(env, fs, 3, 1000)
    env.run(hsm.migrate("fta0", [f"/data/f{i}" for i in range(3)]))
    agent = ReconcileAgent(env, fs, tsm)
    report = env.run(agent.run(delete_orphans=False))
    assert report.tsm_objects_checked == 3
    assert report.orphans_deleted == 0


def test_recall_many_tape_order_via_sharded_index():
    """Tape-ordered recall served from the sharded index's hot cache.

    The §4.1.2 optimisation now streams its (volume, seq) sort through
    the metadata plane: ``recall_many(tape_order=True, tapedb=...)``
    looks locations up in the (sharded, LRU-cached) index and falls
    back to TSM's catalog only for rows the export hasn't landed yet.
    Both sources must produce the same recalls.
    """
    from repro.tapedb import ShardedTapeIndex

    env = Environment()
    fs, tsm, hsm = build_stack(env, n_drives=1, routing="sticky")
    seed_files(env, fs, 12, 100e6)
    paths = [f"/data/f{i}" for i in range(12)]
    env.run(hsm.migrate("fta0", paths))

    db = ShardedTapeIndex(env, n_shards=3, cache_entries=64)
    for i, p in enumerate(paths[:9]):  # export lag: last 3 missing
        obj = tsm.locate(fs.lookup(p).tsm_object_id)
        db.upsert(obj.object_id, p, hsm.filespace, obj.volume, obj.seq,
                  obj.nbytes)

    done = hsm.recall_many(paths, tape_order=True, tapedb=db)
    env.run(done)
    assert hsm.files_recalled == 12
    assert all(fs.lookup(p).hsm_state is HsmState.PREMIGRATED for p in paths)
    # the index actually served lookups (missed only the stale rows)
    assert db.cache.hits + db.cache.misses >= 9
