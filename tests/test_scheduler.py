"""Tests for ``repro.scheduler``: the archive-as-a-service layer.

Covers the scheduler pieces in isolation (tenant queues, stride
fair-share, admission control), the service end-to-end against a small
simulated site (submit / cancel / preempt / resume, trace emission),
and the long-running-service bugfixes that ride along:

* LoadManager strict unknown-node accounting,
* PftoolJob rejecting a stale (already-used) journal,
* InvariantMonitor detaching on job completion (no growth across a
  service's job stream).
"""

import pytest

from repro.analysis.monitor import InvariantMonitor, set_default_monitor_factory
from repro.pftool import PftoolConfig
from repro.pftool.loadmanager import LoadManager
from repro.recovery.journal import JobJournal
from repro.scheduler import (
    ACTIVE,
    CANCELLED,
    COMPLETED,
    PREEMPTED,
    QUEUED,
    AdmissionController,
    AdmissionPolicy,
    ArchiveService,
    FairShare,
    JobTicket,
    SchedulerConfig,
    TenantQueue,
)
from repro.scheduler.scenario import build_site
from repro.sim import Environment, SimulationError
from repro.trace import Tracer, tracing
from repro.trace.assertions import TraceAssertions
from repro.workloads.generators import preload_tree

MB = 1_000_000


def small_cfg(**over):
    kw = dict(num_workers=2, num_readdir=1, num_tapeprocs=0,
              stat_batch=8, copy_batch=4)
    kw.update(over)
    return PftoolConfig(**kw)  # 6 ranks with the defaults above


def make_service(env, tenants=(("alice", 1.0), ("bob", 2.0)), **policy_over):
    system = build_site(env)
    policy = AdmissionPolicy(**{"slots_per_node": 12, "max_active_jobs": 8,
                                **policy_over})
    service = ArchiveService(
        system, SchedulerConfig(policy=policy, default_cfg=small_cfg())
    )
    for name, weight in tenants:
        service.add_tenant(name, weight=weight)
    return system, service


def submit_with_tree(service, tenant, name, n_files=2, size=4 * MB, **kw):
    src = f"/jobs/{tenant}/{name}"
    preload_tree(service.system.scratch_fs, src, [size] * n_files)
    return service.submit(tenant, "archive", src, f"/arc/{tenant}/{name}", **kw)


def ticket_for(tenant, op="retrieve", workers=2, tapeprocs=2):
    """A bare ticket for admission-unit tests (never dispatched)."""
    return JobTicket(
        job_id=999, tenant=tenant, op=op, src="/s", dst="/d",
        cfg=small_cfg(num_workers=workers, num_tapeprocs=tapeprocs),
    )


# ---------------------------------------------------------------------------
# TenantQueue
# ---------------------------------------------------------------------------

def _tq_ticket(job_id, priority=0):
    return JobTicket(job_id=job_id, tenant="t", op="archive", src="/s",
                     dst="/d", cfg=small_cfg(), priority=priority)


def test_tenant_queue_priority_then_fifo():
    q = TenantQueue("t")
    for job_id, prio in [(1, 0), (2, 5), (3, 0), (4, 5)]:
        q.push(_tq_ticket(job_id, prio))
    assert [q.pop().job_id for _ in range(4)] == [2, 4, 1, 3]
    assert q.pop() is None and q.peek() is None


def test_tenant_queue_tombstone_remove():
    q = TenantQueue("t")
    for job_id in (1, 2, 3):
        q.push(_tq_ticket(job_id))
    assert q.remove(2) and len(q) == 2
    assert not q.remove(2)  # already gone
    assert not q.remove(99)  # never present
    assert q.peek().job_id == 1
    assert [q.pop().job_id, q.pop().job_id] == [1, 3]


def test_tenant_queue_remove_head_compacts_on_peek():
    q = TenantQueue("t")
    q.push(_tq_ticket(1, priority=9))
    q.push(_tq_ticket(2))
    assert q.remove(1)
    assert q.peek().job_id == 2


# ---------------------------------------------------------------------------
# FairShare
# ---------------------------------------------------------------------------

def test_fairshare_proportional_pick_order():
    fs = FairShare()
    fs.add_tenant("a", 1.0)
    fs.add_tenant("b", 2.0)
    picks = []
    for _ in range(9):
        t = fs.pick(["a", "b"])
        picks.append(t)
        fs.charge(t, 1.0)
    # 2:1 service ratio, to within one dispatch
    assert abs(picks.count("b") - 2 * picks.count("a")) <= 1
    assert fs.deviation(["a", "b"]) <= 1.0 / 9 + 1e-12


def test_fairshare_idle_tenant_does_not_bank_credit():
    fs = FairShare()
    fs.add_tenant("busy", 1.0)
    fs.add_tenant("idle", 1.0)
    for _ in range(50):
        fs.charge("busy", 1.0)
    fs.on_backlogged("idle")  # lag clamp: joins at the gvt, not at 0
    picks = [fs.pick(["busy", "idle"]) for _ in range(2)]
    for t in picks:
        fs.charge(t, 1.0)
    # without the clamp "idle" would win the next 50 picks straight
    assert picks.count("idle") <= 1


def test_fairshare_validation():
    fs = FairShare()
    with pytest.raises(SimulationError):
        fs.add_tenant("t", weight=0)
    fs.add_tenant("t", 1.0)
    with pytest.raises(SimulationError):
        fs.add_tenant("t", 1.0)
    assert fs.deviation([]) == 0.0
    assert fs.deviation(["t"]) == 0.0  # nothing dispatched yet


# ---------------------------------------------------------------------------
# AdmissionController
# ---------------------------------------------------------------------------

def test_admission_reasons_and_accounting():
    env = Environment()
    lm = LoadManager(env, ["fta0", "fta1"])
    ctl = AdmissionController(lm, AdmissionPolicy(slots_per_node=4,
                                                  max_active_jobs=1),
                              n_drives=4)
    t = ticket_for("x", op="archive", tapeprocs=0)
    t.nodes_used = ["fta0"] * 6
    assert ctl.admits(t) == (True, "")
    ctl.on_dispatch(t)
    assert ctl.admits(t) == (False, "max-active-jobs")
    ctl.on_complete(t)
    assert ctl.admits(t) == (True, "")
    assert lm.total_load == 0


def test_admission_fta_load_reason():
    env = Environment()
    lm = LoadManager(env, ["fta0"])
    ctl = AdmissionController(lm, AdmissionPolicy(slots_per_node=8,
                                                  max_active_jobs=8),
                              n_drives=0)
    t = ticket_for("x", op="archive", tapeprocs=0)  # 6 ranks
    t.nodes_used = ["fta0"] * 6
    ctl.on_dispatch(t)  # 6 of 8 slots gone
    assert ctl.admits(t) == (False, "fta-load")


def test_admission_drive_reservation():
    env = Environment()
    lm = LoadManager(env, ["fta0", "fta1", "fta2"])
    ctl = AdmissionController(lm, AdmissionPolicy(slots_per_node=8,
                                                  drive_reserve=1),
                              n_drives=4)
    t = ticket_for("x", op="retrieve", tapeprocs=2)
    t.nodes_used = ["fta0"] * t.ranks
    assert ctl.admits(t) == (True, "")
    ctl.on_dispatch(t)  # 2 of 3 usable drives reserved
    assert ctl.admits(t) == (False, "drives")
    # archive-direction jobs don't touch drives
    t_in = ticket_for("x", op="archive", tapeprocs=2)
    t_in.nodes_used = ["fta1"] * t_in.ranks
    assert ctl.admits(t_in) == (True, "")


def test_admission_validate_rejects_impossible_jobs():
    env = Environment()
    lm = LoadManager(env, ["fta0"])
    ctl = AdmissionController(lm, AdmissionPolicy(slots_per_node=4),
                              n_drives=1)
    with pytest.raises(SimulationError, match="rank-slots"):
        ctl.validate(ticket_for("x", op="archive", workers=8, tapeprocs=0))
    roomy = AdmissionController(lm, AdmissionPolicy(slots_per_node=32),
                                n_drives=1)
    with pytest.raises(SimulationError, match="tape drives"):
        roomy.validate(ticket_for("x", op="retrieve", workers=1, tapeprocs=2))


# ---------------------------------------------------------------------------
# satellite bugfix: LoadManager strict unknown-node accounting
# ---------------------------------------------------------------------------

def test_loadmanager_rejects_unknown_nodes():
    env = Environment()
    lm = LoadManager(env, ["fta0", "fta1"])
    with pytest.raises(SimulationError, match="unknown node"):
        lm.job_started(["fta0", "ghost"])
    # the failed call must not have half-applied its accounting
    assert lm.load_of("fta0") == 0
    with pytest.raises(SimulationError, match="unknown node"):
        lm.job_finished(["ghost"])
    with pytest.raises(SimulationError, match="never told"):
        lm.load_of("ghost")


def test_loadmanager_register_grows_pool():
    env = Environment()
    lm = LoadManager(env, ["fta0"])
    lm.register("fta1")
    lm.register("fta1")  # idempotent
    lm.job_started(["fta1", "fta1"])
    assert lm.load_of("fta1") == 2
    assert lm.machine_list() == ["fta0", "fta1"]
    assert lm.free_slots(4) == 4 + 2


# ---------------------------------------------------------------------------
# satellite bugfix: stale journals are rejected
# ---------------------------------------------------------------------------

def test_used_journal_rejected_unless_resuming():
    env = Environment()
    system = build_site(env)
    preload_tree(system.scratch_fs, "/jobs/a", [4 * MB])
    journal = JobJournal(env)
    job = system.archive("/jobs/a", "/arc/a", small_cfg(), journal=journal)
    env.run(job.done)
    # the journal now belongs to the finished job: handing it to a new
    # submission would silently inherit the old frontier and skip files
    preload_tree(system.scratch_fs, "/jobs/b", [4 * MB])
    with pytest.raises(SimulationError, match="already belongs"):
        system.archive("/jobs/b", "/arc/b", small_cfg(), journal=journal)
    # the resume path stays open (cfg.restart=True)
    resumed = system.resume_job(journal, small_cfg())
    stats = env.run(resumed.done)
    assert stats.files_copied == 0  # everything deduped from the journal


# ---------------------------------------------------------------------------
# satellite bugfix: monitor detaches on completion (no growth)
# ---------------------------------------------------------------------------

def test_monitor_does_not_grow_over_job_stream():
    mon = InvariantMonitor(strict=True)
    set_default_monitor_factory(lambda: mon)
    env = Environment()
    _system, service = make_service(env)
    for k in range(4):
        ticket = submit_with_tree(service, "alice", f"j{k}", n_files=1)
        env.run(ticket.done)
        assert mon.attached_jobs == 0, (
            f"monitor still holds {mon.attached_jobs} job(s) after job {k}"
        )
        assert ticket.job.comm.monitor is None
    assert mon.violations == []


# ---------------------------------------------------------------------------
# ArchiveService end-to-end
# ---------------------------------------------------------------------------

def test_service_submit_completes_and_copies_bytes():
    env = Environment()
    system, service = make_service(env)
    ticket = submit_with_tree(service, "alice", "j0", n_files=3)
    assert ticket.state in (QUEUED, ACTIVE)
    stats = env.run(ticket.done)
    assert ticket.state == COMPLETED
    assert stats.files_copied == 3
    assert system.archive_fs.exists("/arc/alice/j0/f0000")
    summary = service.summary()
    assert summary["submitted"] == summary["completed"] == 1
    assert service.in_flight == 0


def test_service_validates_submissions():
    env = Environment()
    _system, service = make_service(env)
    with pytest.raises(SimulationError, match="unknown tenant"):
        service.submit("mallory", "archive", "/s", "/d")
    with pytest.raises(SimulationError, match="unknown service op"):
        service.submit("alice", "shred", "/s", "/d")
    with pytest.raises(SimulationError, match="rank-slots"):
        service.submit("alice", "archive", "/s", "/d",
                       cfg=small_cfg(num_workers=200))
    with pytest.raises(SimulationError, match="unknown job id"):
        service.query(42)


def test_service_admission_blocks_then_drains():
    env = Environment()
    _system, service = make_service(env, max_active_jobs=1)
    first = submit_with_tree(service, "alice", "j0")
    second = submit_with_tree(service, "alice", "j1")
    assert first.state == ACTIVE
    assert second.state == QUEUED
    assert second.blocked_on == "max-active-jobs"
    env.run(service.drain())
    assert first.state == second.state == COMPLETED
    assert second.blocked_on == ""
    assert second.dispatched >= first.finished


def test_service_cancel_queued_never_dispatches():
    env = Environment()
    _system, service = make_service(env, max_active_jobs=1)
    submit_with_tree(service, "alice", "j0")
    victim = submit_with_tree(service, "alice", "j1")
    assert service.cancel(victim.job_id)
    assert victim.state == CANCELLED
    assert victim.dispatched is None and victim.stats is None
    assert not service.cancel(victim.job_id)  # already terminal
    env.run(service.drain())
    assert victim.job_id not in service.dispatch_log


def test_service_cancel_active_aborts_job():
    env = Environment()
    _system, service = make_service(env)
    ticket = submit_with_tree(service, "alice", "j0", n_files=4)
    assert ticket.state == ACTIVE
    env.run(env.timeout(0.01))
    assert service.cancel(ticket.job_id, "operator said so")
    env.run(service.drain())
    assert ticket.state == CANCELLED
    assert ticket.stats is not None and ticket.stats.aborted


def test_service_preempt_then_resume_converges():
    env = Environment()
    system, service = make_service(env)
    src = "/jobs/alice/big"
    preload_tree(system.scratch_fs, src, [8 * MB] * 6)
    ticket = submit_with_tree(service, "bob", "decoy", n_files=1)
    big = service.submit("alice", "archive", src, "/arc/alice/big")
    env.run(env.timeout(0.05))
    assert service.preempt(big.job_id)
    assert not service.preempt(big.job_id)  # already requested
    env.run(service.drain())
    assert big.state == PREEMPTED
    assert big.journal is not None and big.journal.job_meta is not None
    resumed = service.resume(big.job_id)
    assert resumed.resume_of == big.job_id
    stats = env.run(resumed.done)
    assert resumed.state == COMPLETED
    # oracle convergence: the resume walks everything, dedupes what the
    # journal says already landed, and copies only the remainder
    assert stats.files_seen == 6
    assert stats.files_copied + stats.files_skipped == 6
    assert stats.files_skipped > 0  # the preempted run's work survived
    for i in range(6):
        assert system.archive_fs.exists(f"/arc/alice/big/f{i:04d}")
    assert ticket.state == COMPLETED
    # conservation across the preempt/resume pair
    s = service.summary()
    assert s["submitted"] == s["completed"] + s["cancelled"] + s["preempted"]


def test_service_resume_requires_preempted_state():
    env = Environment()
    _system, service = make_service(env)
    ticket = submit_with_tree(service, "alice", "j0")
    env.run(ticket.done)
    with pytest.raises(SimulationError, match="only preempted"):
        service.resume(ticket.job_id)


def test_service_fair_share_across_tenants():
    env = Environment()
    _system, service = make_service(
        env, max_active_jobs=1,
        tenants=(("light", 1.0), ("heavy", 3.0)),
    )
    for k in range(4):
        submit_with_tree(service, "light", f"j{k}", n_files=1, size=1 * MB)
    for k in range(12):
        submit_with_tree(service, "heavy", f"j{k}", n_files=1, size=1 * MB)
    env.run(service.drain())
    cost = service.summary()["dispatched_cost"]
    # 3:1 weights over a fully backlogged run: heavy gets ~3x the cost
    assert cost["heavy"] == 3 * cost["light"]
    # and after the warmup half the sampled deviation stays small
    samples = service.deviation_samples
    assert max(samples[len(samples) // 2:]) <= 0.25


def test_service_emits_scheduler_trace():
    tracer = Tracer()
    with tracing(tracer):
        env = Environment()
        _system, service = make_service(env, max_active_jobs=1)
        a = submit_with_tree(service, "alice", "j0")
        b = submit_with_tree(service, "bob", "j1")
        env.run(service.drain())
    ta = TraceAssertions(tracer)
    assert len(ta.select("sched:submit", ph="i")) == 2
    assert len(ta.select("sched:dispatch", ph="i")) == 2
    assert len(ta.select("sched:complete", ph="i")) == 2
    ta.happens_before("sched:submit", "sched:dispatch", per="args:job_id")
    ta.happens_before("sched:dispatch", "sched:complete", per="args:job_id")
    # the blocked head emitted its reason exactly once
    blocked = ta.select("sched:blocked", ph="i")
    assert [ev["args"]["job_id"] for ev in blocked] == [b.job_id]
    # queue-depth counter tracks the backlog
    depths = [ev["args"]["sched:queue_depth"]
              for ev in ta.select("sched:queue_depth", ph="C")]
    assert max(depths) >= 1 and depths[-1] == 0
    assert a.state == b.state == COMPLETED


def test_service_snapshot_and_metrics():
    env = Environment()
    _system, service = make_service(env)
    ticket = submit_with_tree(service, "alice", "j0")
    env.run(ticket.done)
    snap = ticket.snapshot()
    assert snap["state"] == COMPLETED
    assert snap["wait_time"] == pytest.approx(
        ticket.dispatched - ticket.submitted)
    assert service.metrics.counter("sched.completed").snapshot() == 1
    assert service.metrics.gauge("sched.active").snapshot() == 0
