"""Tests for trace / job-record persistence."""

import json

import pytest

from repro.workloads import (
    generate_open_science_trace,
    load_job_records,
    load_trace,
    save_job_records,
    save_trace,
)


def test_trace_roundtrip(tmp_path):
    trace = generate_open_science_trace(seed=2009)
    p = save_trace(trace, tmp_path / "trace.json")
    back = load_trace(p)
    assert back.seed == trace.seed
    assert [(j.job_id, j.n_files, j.total_bytes) for j in back.jobs] == [
        (j.job_id, j.n_files, j.total_bytes) for j in trace.jobs
    ]
    assert back.summary() == trace.summary()


def test_trace_format_guard(tmp_path):
    p = tmp_path / "bogus.json"
    p.write_text(json.dumps({"format": "something-else", "jobs": []}))
    with pytest.raises(ValueError, match="not an open-science trace"):
        load_trace(p)


def test_job_records_roundtrip(tmp_path):
    records = [
        {"op": "copy", "files_copied": 10, "bytes_copied": 123456,
         "data_rate": 1e8, "aborted": False},
        {"op": "copy", "files_copied": 3, "bytes_copied": 999,
         "data_rate": 5e7, "aborted": True},
    ]
    p = save_job_records(records, tmp_path / "day1.jsonl")
    back = load_job_records(p)
    assert back == records


def test_job_records_format_guard(tmp_path):
    p = tmp_path / "bad.jsonl"
    p.write_text('{"format": "nope"}\n{}\n')
    with pytest.raises(ValueError, match="not a job-records"):
        load_job_records(p)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_job_records(empty)


def test_records_from_real_job(tmp_path):
    """JobStats.to_dict output persists and reloads faithfully."""
    from repro.archive import ArchiveParams, ParallelArchiveSystem
    from repro.pftool import PftoolConfig
    from repro.sim import Environment
    from repro.tapesim import TapeSpec

    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=2, n_disk_servers=2, n_tape_drives=1,
                      n_scratch_tapes=4,
                      tape_spec=TapeSpec(load_time=5, unload_time=5)),
    )

    def seed():
        system.scratch_fs.mkdir("/d", parents=True)
        yield system.scratch_fs.write_file("scratch", "/d/f", 10_000_000)

    env.run(env.process(seed()))
    stats = env.run(
        system.archive(
            "/d", "/a",
            PftoolConfig(num_workers=1, num_readdir=1, num_tapeprocs=0),
        ).done
    )
    p = save_job_records([stats.to_dict()], tmp_path / "ops.jsonl")
    back = load_job_records(p)
    assert back[0]["files_copied"] == 1
    assert back[0]["bytes_copied"] == 10_000_000
