"""End-to-end PFTool tests against the full archive system.

Several tests run under a :func:`repro.trace.tracing` context and
additionally assert *causal* properties of the run via
:class:`repro.trace.assertions.TraceAssertions` — chunk spans tiling
the file, recalls monotone in tape sequence, drive mounts exclusive —
which final-total assertions alone cannot see.
"""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.trace import tracing
from repro.trace.assertions import TraceAssertions

GB = 1_000_000_000
MB = 1_000_000

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env, **over):
    kw = dict(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0002,
    )
    kw.update(over)
    return ParallelArchiveSystem(env, ArchiveParams(**kw))


def seed_scratch(env, system, layout):
    """layout: {path: nbytes} created on the scratch FS."""

    def go():
        for path, size in layout.items():
            parent = path.rsplit("/", 1)[0] or "/"
            system.scratch_fs.mkdir(parent, parents=True)
            yield system.scratch_fs.write_file("scratch", path, size)

    env.run(env.process(go()))


def cfg_small(**over):
    kw = dict(num_workers=4, num_readdir=1, num_tapeprocs=2, stat_batch=8,
              copy_batch=4, watchdog_interval=30.0)
    kw.update(over)
    return PftoolConfig(**kw)


def test_pfcp_archives_a_tree():
    env = Environment()
    system = small_site(env)
    layout = {f"/campaign/run{i}/out.dat": 50 * MB for i in range(6)}
    layout["/campaign/notes.txt"] = 1000
    seed_scratch(env, system, layout)

    job = system.archive("/campaign", "/archive/campaign", cfg_small())
    stats = env.run(job.done)
    assert stats.files_copied == 7
    assert stats.bytes_copied == 6 * 50 * MB + 1000
    assert not stats.aborted
    # the tree exists on the archive side
    for i in range(6):
        inode = system.archive_fs.lookup(f"/archive/campaign/run{i}/out.dat")
        assert inode.size == 50 * MB
    # content tokens propagated
    src = system.scratch_fs.lookup("/campaign/notes.txt")
    dst = system.archive_fs.lookup("/archive/campaign/notes.txt")
    assert src.content_token == dst.content_token


def test_pfcp_small_files_placed_on_slow_pool():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/d/tiny": 1000, "/d/big.dat": 50 * MB})
    job = system.archive("/d", "/a", cfg_small())
    env.run(job.done)
    assert system.archive_fs.lookup("/a/tiny").pool == "slow"
    assert system.archive_fs.lookup("/a/big.dat").pool == "fast"


def test_pfcp_single_large_file_nto1_chunks():
    with tracing() as tracer:
        env = Environment()
        system = small_site(env)
        seed_scratch(env, system, {"/big/one.dat": 20 * GB})
        cfg = cfg_small(chunk_threshold=4 * GB, copy_chunk_size=2 * GB)
        job = system.archive("/big", "/a", cfg)
        stats = env.run(job.done)
    assert stats.files_copied == 1
    assert stats.chunks_copied == 10  # 20GB / 2GB
    assert system.archive_fs.lookup("/a/one.dat").size == 20 * GB
    # trace: the 10 chunk spans tile [0, 20GB) with no gap or overlap
    ta = TraceAssertions(tracer)
    ta.span_count("copy:chunk", expect=10)
    ta.covers("copy:chunk", 20 * GB, per="args:dst")
    ta.span_count("pftool:job", expect=1)


def test_nto1_parallelism_speeds_up_large_copy():
    def run(workers):
        env = Environment()
        system = small_site(env)
        seed_scratch(env, system, {"/big/one.dat": 20 * GB})
        cfg = cfg_small(
            num_workers=workers, chunk_threshold=2 * GB, copy_chunk_size=1 * GB
        )
        job = system.archive("/big", "/a", cfg)
        stats = env.run(job.done)
        return stats.duration

    t1 = run(1)
    t8 = run(8)
    assert t8 < t1 / 2  # parallel chunks cut wall-clock substantially


def test_pfcp_fuse_very_large_file():
    env = Environment()
    system = small_site(env)
    system.fuse.chunk_size = 2 * GB
    seed_scratch(env, system, {"/huge/sim.h5": 10 * GB})
    cfg = cfg_small(fuse_threshold=8 * GB, chunk_threshold=4 * GB)
    job = system.archive("/huge", "/a", cfg)
    stats = env.run(job.done)
    assert stats.fuse_files == 1
    assert stats.files_copied == 1
    assert system.fuse.is_fuse_file("/a/sim.h5")
    assert system.fuse.logical_size("/a/sim.h5") == 10 * GB
    assert system.fuse.is_complete("/a/sim.h5")
    # chunk files are real archive files
    refs = system.fuse.chunks("/a/sim.h5")
    assert len(refs) == 5


def test_pfls_lists_archive():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/d/a": 100, "/d/b": 200})
    env.run(system.archive("/d", "/a", cfg_small()).done)
    job = system.list_archive("/a", cfg_small())
    stats = env.run(job.done)
    assert stats.files_seen == 2
    listing = [l for l in stats.output_lines if l.startswith("/a/")]
    assert len(listing) == 2


def test_pfcm_compare_clean_and_corrupted():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/d/a": 5 * MB, "/d/b": 5 * MB})
    env.run(system.archive("/d", "/a", cfg_small()).done)
    stats = env.run(system.compare("/d", "/a", cfg_small()).done)
    assert stats.files_compared == 2
    assert stats.compare_mismatches == 0
    # corrupt one destination
    system.archive_fs.set_token("/a/b", 0xBAD)
    stats = env.run(system.compare("/d", "/a", cfg_small()).done)
    assert stats.compare_mismatches == 1


def test_restore_from_tape_roundtrip():
    with tracing() as tracer:
        env = Environment()
        system = small_site(env)
        layout = {f"/d/f{i}": 20 * MB for i in range(8)}
        seed_scratch(env, system, layout)
        env.run(system.archive("/d", "/a", cfg_small()).done)
        report = env.run(system.migrate_to_tape())
        assert report.files == 8
        for i in range(8):
            assert system.archive_fs.lookup(f"/a/f{i}").is_stub
        # retrieve back to scratch
        job = system.retrieve("/a", "/restored", cfg_small())
        stats = env.run(job.done)
    assert stats.tape_files_restored == 8
    assert stats.files_copied == 8
    for i in range(8):
        node = system.scratch_fs.lookup(f"/restored/f{i}")
        assert node.size == 20 * MB
        assert (
            node.content_token
            == system.scratch_fs.lookup(f"/d/f{i}").content_token
        )
    # trace: stores complete before their volume is recalled, recalls on
    # each volume proceed in ascending tape sequence (the §4.1.1 ordered
    # recall), and no drive is ever double-mounted
    ta = TraceAssertions(tracer)
    assert ta.span_count("tsm:recall") == 8
    ta.monotonic("tsm:recall", "seq", per="args:volume")
    ta.monotonic("tape:restore", "seq", per="args:volume")
    ta.happens_before("tsm:store", "tsm:recall", per="args:volume")
    ta.no_overlap("drive:mounted", per="tid")


def test_restore_mixed_resident_and_migrated():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/d/hot": 10 * MB, "/d/cold": 10 * MB})
    env.run(system.archive("/d", "/a", cfg_small()).done)
    env.run(
        system.migrate_to_tape(where=lambda p, i, now: p.endswith("cold"))
    )
    job = system.retrieve("/a", "/back", cfg_small())
    stats = env.run(job.done)
    assert stats.files_copied == 2
    assert stats.tape_files_restored == 1
    assert system.scratch_fs.lookup("/back/hot").size == 10 * MB
    assert system.scratch_fs.lookup("/back/cold").size == 10 * MB


def test_restart_skips_current_destinations():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/d/a": 5 * MB, "/d/b": 5 * MB})
    env.run(system.archive("/d", "/a", cfg_small()).done)
    # re-run with restart: everything is already current
    cfg = cfg_small(restart=True)
    stats = env.run(system.archive("/d", "/a", cfg).done)
    assert stats.files_skipped == 2
    assert stats.files_copied == 0
    assert stats.bytes_copied == 0


def test_restart_after_cancel_resumes_chunks():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/big/one.dat": 20 * GB})
    cfg = cfg_small(num_workers=2, chunk_threshold=2 * GB, copy_chunk_size=1 * GB)
    job = system.archive("/big", "/a", cfg)

    def canceller():
        yield env.timeout(10.0)  # partway through the copy
        job.cancel("simulated outage")

    env.process(canceller())
    stats1 = env.run(job.done)
    assert stats1.aborted
    done_before = stats1.chunks_copied
    assert 0 < done_before < 20

    cfg2 = cfg_small(
        num_workers=8, chunk_threshold=2 * GB, copy_chunk_size=1 * GB, restart=True
    )
    job2 = system.archive("/big", "/a", cfg2)
    stats2 = env.run(job2.done)
    assert not stats2.aborted
    assert stats2.files_copied == 1
    # the second pass did not resend the chunks the first pass completed
    assert stats2.bytes_skipped >= done_before * 1 * GB - 1


def test_watchdog_samples_progress():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {f"/d/f{i}": 200 * MB for i in range(8)})
    cfg = cfg_small(watchdog_interval=1.0)
    job = system.archive("/d", "/a", cfg)
    stats = env.run(job.done)
    assert len(stats.watchdog_history) >= 1
    assert stats.watchdog_history[-1].bytes_total <= stats.bytes_copied


def test_empty_directory_archive():
    env = Environment()
    system = small_site(env)
    system.scratch_fs.mkdir("/empty", parents=True)
    job = system.archive("/empty", "/a", cfg_small())
    stats = env.run(job.done)
    assert stats.files_copied == 0
    assert stats.dirs_walked == 1
    assert system.archive_fs.exists("/a")


def test_single_file_source():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/solo.dat": 3 * MB})
    job = system.archive("/solo.dat", "/a", cfg_small())
    stats = env.run(job.done)
    assert stats.files_copied == 1
    assert system.archive_fs.lookup("/a/solo.dat").size == 3 * MB
