"""Fault injection + PFTool retry/backoff recovery (the worker-crash
job-wedge family).

The scenarios here drive a full site through injected tape-drive
failures, transient TSM retrieve errors, filesystem error bursts and
FTA-node outages, and assert that PFTool jobs complete (no watchdog
abort, no wedged queue entries) with the recovery accounted in
``JobStats.retries_by_class`` / ``failures_by_class``.
"""

import os

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.faults import (
    DriveFault,
    FaultPlan,
    NodeOutageFault,
    TransientIOFault,
    TsmFault,
    classify_failure,
)
from repro.pfs import PathError
from repro.pftool import PftoolConfig
from repro.pftool.messages import CopyResult
from repro.sim import Environment, FilterStore, SimulationError
from repro.tapesim import TapeSpec
from repro.workloads import small_file_flood
from repro.workloads.generators import _instant_create

GB = 1_000_000_000
MB = 1_000_000

# The nightly seed-sweep CI job sets REPRO_SEED_SWEEP=0..9 to re-run
# these scenarios with shifted fault-plan seeds: the *recovery*
# assertions (no abort, no wedge, correct file contents) must hold for
# any seed, so a sweep surfaces flaky nondeterminism before users do.
SEED_SWEEP = int(os.environ.get("REPRO_SEED_SWEEP", "0"))


def sweep(seed):
    """Offset a FaultPlan seed under the CI seed-sweep matrix."""
    return seed + 1000 * SEED_SWEEP

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env, **over):
    kw = dict(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0002,
    )
    kw.update(over)
    return ParallelArchiveSystem(env, ArchiveParams(**kw))


def seed_scratch(env, system, layout):
    def go():
        for path, size in layout.items():
            parent = path.rsplit("/", 1)[0] or "/"
            system.scratch_fs.mkdir(parent, parents=True)
            yield system.scratch_fs.write_file("scratch", path, size)

    env.run(env.process(go()))


def cfg_small(**over):
    kw = dict(num_workers=4, num_readdir=1, num_tapeprocs=2, stat_batch=8,
              copy_batch=4, watchdog_interval=30.0)
    kw.update(over)
    return PftoolConfig(**kw)


def migrate_tree(env, system, root, n, size):
    """Archive-side files under *root* pushed out to tape and indexed."""
    paths = small_file_flood(system.archive_fs, root, n, size)
    env.run(system.hsm.migrate("fta0", paths))
    env.run(system.exporter.run_once())
    return paths


def assert_no_wedge(job):
    """No leaked queue state once the Manager declared completion."""
    m = job._manager
    assert m.waiting_chunks == {}
    assert m.parked_container_jobs == {}
    assert m.pending_retries == 0
    assert not m.copy_q
    assert not m.tape_q
    assert m.out_copy == 0
    assert m.out_tape == 0


# ----------------------------------------------------------------------
# taxonomy / plumbing units
# ----------------------------------------------------------------------
def test_classify_failure_taxonomy():
    assert classify_failure(DriveFault("x")) == "drive"
    assert classify_failure(TsmFault("x")) == "tsm"
    assert classify_failure(TransientIOFault("x")) == "fs"
    assert classify_failure(NodeOutageFault("x")) == "node"
    assert classify_failure(PathError("x")) == "path"
    assert classify_failure(SimulationError("x")) == "io"
    assert classify_failure(ValueError("x")) == "error"


def test_fault_plan_is_deterministic():
    def run(seed):
        env = Environment()
        system = small_site(env)
        migrate_tree(env, system, "/cold", 8, 10 * MB)
        system.inject_faults(
            FaultPlan(seed=seed).tsm_retrieve_errors(rate=0.5, max_failures=3)
        )
        stats = env.run(system.retrieve("/cold", "/back", cfg_small()).done)
        return (stats.retries_by_class, stats.duration)

    assert run(sweep(11)) == run(sweep(11))


def test_cancelled_store_get_does_not_consume_items():
    """StoreGet.cancel() withdraws the get eagerly: a later put must go
    to the next real getter, not be swallowed by the abandoned one (the
    watchdog lost-Exit bug)."""
    env = Environment()
    store = FilterStore(env)
    abandoned = store.get()
    abandoned.cancel()
    live = store.get()
    store.put("msg")
    env.run()
    assert not abandoned.triggered
    assert live.triggered and live.value == "msg"


def _bare_manager(env):
    """A Manager wired to toy file systems (no job run needed)."""
    from repro.disksim import DiskArray
    from repro.mpisim import SimComm
    from repro.pfs import GpfsFileSystem, StoragePool
    from repro.pftool import RuntimeContext
    from repro.pftool.manager import Manager
    from repro.pftool.stats import JobStats

    def fs(name):
        f = GpfsFileSystem(env, name, metadata_op_time=0.0)
        arr = DiskArray(env, f"{name}-a", capacity_bytes=1e15, bandwidth=1e9,
                        seek_time=0.0)
        f.add_pool(StoragePool("p", [arr]), default=True)
        return f

    src, dst = fs("src"), fs("dst")
    src.mkdir("/src", parents=True)
    ctx = RuntimeContext(src_fs=src, dst_fs=dst, nodes=["n0", "n1"])
    cfg = PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=0)
    comm = SimComm(env, cfg.total_ranks)
    return Manager(env, comm, cfg, ctx, "copy", "/src", "/dst", JobStats(),
                   env.event())


def test_duplicate_chunk_result_counts_file_once():
    """A re-delivered (retried) chunk range must not double-credit
    files_copied — the restart-range double-count bug."""
    env = Environment()
    m = _bare_manager(env)

    def go():
        m.ctx.dst_fs.mkdir("/dst", parents=True)
        yield m.ctx.dst_fs.write_file("n0", "/dst/big", 2 * MB)

    env.run(env.process(go()))
    m.out_copy = 4
    first = CopyResult(0, MB, chunk_of=("/src/big", "/dst/big", 2 * MB),
                       offset=0, length=MB)
    second = CopyResult(0, MB, chunk_of=("/src/big", "/dst/big", 2 * MB),
                        offset=MB, length=MB)
    m._on_copy_result(first)
    m._on_copy_result(first)  # duplicate delivery of the same range
    assert m.stats.files_copied == 0
    m._on_copy_result(second)
    assert m.stats.files_copied == 1
    m._on_copy_result(second)  # late duplicate after completion
    assert m.stats.files_copied == 1
    assert m.stats.chunks_copied == 4  # every delivery is still a chunk event


# ----------------------------------------------------------------------
# the acceptance scenario: drive failures + TSM errors mid-restore
# ----------------------------------------------------------------------
def test_restore_survives_drive_failures_and_tsm_errors():
    """Two drives die mid-job (one repaired later) while the TSM server
    throws transient retrieve errors; the restore completes without a
    watchdog abort and the stats carry per-class retry counts."""
    env = Environment()
    # Long TSM transactions widen the acquire->read window so the drive
    # outages land while a retrieve holds the drive (DriveFault path).
    system = small_site(env, n_tape_drives=2, tsm_txn_time=2.0)
    paths = migrate_tree(env, system, "/cold", 12, 40 * MB)
    injector = system.inject_faults(
        FaultPlan(seed=sweep(7))
        .drive_failure(at=10.0, drive="drv00", repair_after=30.0)
        .drive_failure(at=20.0, drive="drv01", repair_after=30.0)
        .tsm_retrieve_errors(rate=0.3, max_failures=4)
    )
    cfg = cfg_small(num_tapeprocs=2, retry_backoff=0.5, retry_limit=4,
                    stall_timeout=600.0)
    job = system.retrieve("/cold", "/back", cfg)
    stats = env.run(job.done)

    assert not stats.aborted
    assert stats.files_failed == 0
    assert stats.tape_files_restored == 12
    assert stats.files_copied == 12
    for p in paths:
        name = p.rsplit("/", 1)[1]
        assert system.scratch_fs.lookup(f"/back/{name}").size == 40 * MB
    assert injector.injected.get("drive") == 2
    assert stats.failures_by_class == {}
    if SEED_SWEEP == 0:
        # Fault *accounting* is pinned to the baseline seed: whether a
        # drive outage catches a retrieve in flight (and so forces a
        # retry) depends on the fault plan's timing draw.  Under the
        # sweep only the recovery invariants above must hold.
        assert injector.injected.get("tsm", 0) >= 1
        assert stats.retries_by_class.get("drive", 0) >= 1
        assert stats.retries_by_class.get("tsm", 0) >= 1
    assert_no_wedge(job)


def test_tape_retrieve_errors_exhaust_retries_without_wedging():
    """Persistent TSM errors against every retrieve: the job must still
    terminate (no wedge, no abort) with the losses accounted."""
    env = Environment()
    system = small_site(env)
    migrate_tree(env, system, "/cold", 4, 10 * MB)
    system.inject_faults(
        FaultPlan(seed=sweep(3)).tsm_retrieve_errors(rate=1.0, max_failures=1000)
    )
    cfg = cfg_small(retry_limit=1, retry_backoff=0.5, stall_timeout=600.0)
    job = system.retrieve("/cold", "/back", cfg)
    stats = env.run(job.done)
    assert not stats.aborted
    assert stats.tape_files_restored == 0
    assert stats.files_failed == 4
    assert stats.failures_by_class.get("tsm") == 4
    assert stats.retries_by_class.get("tsm") == 4  # one retry each
    assert_no_wedge(job)


# ----------------------------------------------------------------------
# filesystem faults on the copy path
# ----------------------------------------------------------------------
def test_transient_fs_errors_on_chunked_copy_retried():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/big/one.dat": 8 * GB})
    system.inject_faults(
        FaultPlan(seed=sweep(5)).fs_errors(
            rate=1.0, max_failures=2, op="write", path_contains="one.dat"
        )
    )
    cfg = cfg_small(chunk_threshold=2 * GB, copy_chunk_size=2 * GB,
                    retry_backoff=0.5)
    job = system.archive("/big", "/a", cfg)
    stats = env.run(job.done)
    assert not stats.aborted
    assert stats.files_copied == 1
    assert stats.files_failed == 0
    assert stats.retries_by_class.get("fs") == 2
    assert system.archive_fs.lookup("/a/one.dat").size == 8 * GB
    assert_no_wedge(job)


def test_permanent_create_failure_drains_waiting_chunks():
    """When the provisioning (create=True) chunk fails for good, the
    parked sibling chunks must be dropped so the job can finish."""
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/big/doomed.dat": 8 * GB, "/big/ok.dat": 5 * MB})
    system.inject_faults(
        FaultPlan(seed=sweep(5)).fs_errors(
            rate=1.0, max_failures=50, op="create", path_contains="doomed"
        )
    )
    cfg = cfg_small(chunk_threshold=2 * GB, copy_chunk_size=2 * GB,
                    retry_limit=2, retry_backoff=0.5)
    job = system.archive("/big", "/a", cfg)
    stats = env.run(job.done)
    assert not stats.aborted
    assert stats.files_copied == 1  # ok.dat
    assert stats.files_failed == 1  # doomed.dat, exactly once
    assert stats.retries_by_class.get("fs") == 2
    assert stats.failures_by_class.get("fs") == 1
    assert system.archive_fs.lookup("/a/ok.dat").size == 5 * MB
    assert_no_wedge(job)


def test_node_outage_copies_retried_on_recovery():
    """An FTA node drops out while its workers hold copy batches; the
    failed batches are retried after the outage and the job completes.

    The outage starts mid-copy (not at arming): control messages sent
    into an outage window are now *delayed* past it rather than silently
    delivered, so a window covering dispatch would simply idle the node.
    Work already delivered still fails its data ops with the ``node``
    class, and at least one in-flight message rides the delay path.
    (start= is relative to arming, so 0.01 lands after the first batch
    dispatch but well inside the ~0.04 s copy phase.)
    """
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {f"/d/f{i:02d}": 2 * MB for i in range(16)})
    injector = system.inject_faults(
        FaultPlan(seed=sweep(9)).node_outage(node="fta1", start=0.01,
                                             duration=2.5)
    )
    cfg = cfg_small(retry_backoff=1.0, retry_limit=4)
    job = system.archive("/d", "/a", cfg)
    stats = env.run(job.done)
    assert not stats.aborted
    assert stats.files_copied == 16
    assert stats.files_failed == 0
    assert stats.retries_by_class.get("node", 0) >= 1
    assert injector.delayed_messages >= 1
    assert injector.injected.get("node", 0) >= 1
    for i in range(16):
        assert system.archive_fs.lookup(f"/a/f{i:02d}").size == 2 * MB
    assert_no_wedge(job)


# ----------------------------------------------------------------------
# sentinel-free tape destinations
# ----------------------------------------------------------------------
def test_restore_paths_containing_sentinel_substrings():
    """Real paths containing '@@' or '##container##' are just paths: the
    structured TapeDst markers must not misroute them (the old string
    sentinels did)."""
    env = Environment()
    system = small_site(env)
    system.archive_fs.mkdir("/cold", parents=True)
    weird = ["/cold/run@@7@@fields@@v2.h5", "/cold/x##container##y.dat"]
    for p in weird:
        _instant_create(system.archive_fs, "setup", p, 10 * MB, 0xD0 << 20)
    env.run(system.hsm.migrate("fta0", weird))
    env.run(system.exporter.run_once())
    job = system.retrieve("/cold", "/back", cfg_small())
    stats = env.run(job.done)
    assert not stats.aborted
    assert stats.files_copied == 2
    assert stats.files_failed == 0
    assert system.scratch_fs.lookup("/back/run@@7@@fields@@v2.h5").size == 10 * MB
    assert system.scratch_fs.lookup("/back/x##container##y.dat").size == 10 * MB
    assert_no_wedge(job)


# ----------------------------------------------------------------------
# watchdog behaviour
# ----------------------------------------------------------------------
def test_watchdog_exits_with_the_job():
    """After Exit the watchdog must stop sampling: the lost-Exit bug left
    it running (its abandoned receive swallowed the Exit message)."""
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, {"/d/a": 5 * MB, "/d/b": 5 * MB})
    job = system.archive("/d", "/a", cfg_small(watchdog_interval=10.0))
    stats = env.run(job.done)
    assert not stats.aborted
    n = len(stats.watchdog_history)
    env.run(until=env.now + 200.0)
    assert len(stats.watchdog_history) == n


def test_watchdog_still_aborts_wedged_restore():
    """Recovery must not defang the watchdog: with every drive dead and
    unrepaired, acquire blocks forever and the stall-abort still fires."""
    env = Environment()
    system = small_site(env, n_tape_drives=1, n_fta=2)
    migrate_tree(env, system, "/cold", 4, 10 * MB)
    system.inject_faults(FaultPlan(seed=sweep(1)).drive_failure(at=0.0, drive="drv00"))
    cfg = cfg_small(num_workers=2, num_tapeprocs=1,
                    watchdog_interval=50.0, stall_timeout=300.0)
    job = system.retrieve("/cold", "/back", cfg)
    stats = env.run(job.done)
    assert stats.aborted
    assert "watchdog" in stats.abort_reason
