"""Crash-recovery tests: journal, crash faults, two-phase delete windows,
migration-lease adoption, and journal-based pfcp resume.

The crash windows are hit deterministically with the journal's
``after_append`` hook: the instant a record of interest is appended, the
test schedules a kill via ``env.call_later`` — the kill runs as its own
kernel callback, so a component is never asked to kill itself from
inside its own append.
"""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.faults import CrashFault, FaultPlan
from repro.pftool import PftoolConfig
from repro.recovery import JobJournal
from repro.recovery.chaos import run_chaos
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.workloads.persistence import load_journal, save_journal

GB = 1_000_000_000
MB = 1_000_000

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def small_site(env, **over):
    kw = dict(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0002,
    )
    kw.update(over)
    return ParallelArchiveSystem(env, ArchiveParams(**kw))


def seed_scratch(env, system, layout):
    def go():
        for path, size in sorted(layout.items()):
            parent = path.rsplit("/", 1)[0] or "/"
            system.scratch_fs.mkdir(parent, parents=True)
            yield system.scratch_fs.write_file("scratch", path, size)

    env.run(env.process(go()))


def cfg_small(**over):
    kw = dict(num_workers=4, num_readdir=1, num_tapeprocs=2, stat_batch=8,
              copy_batch=4, watchdog_interval=10.0, stall_timeout=120.0)
    kw.update(over)
    return PftoolConfig(**kw)


LAYOUT = {f"/d/small/f{i}": (3 + i) * MB for i in range(4)}
LAYOUT["/d/big"] = 40 * MB  # chunked at threshold 16MB / chunk 4MB
TOTAL_BYTES = sum(LAYOUT.values())

CHUNKY = dict(chunk_threshold=16 * MB, copy_chunk_size=4 * MB)


def arch_snapshot(system):
    """path -> (size, matches-source-token) for live files under /arch."""
    out = {}
    for path, inode in system.archive_fs.walk("/"):
        if not inode.is_file or not path.startswith("/arch/"):
            continue
        src = system.scratch_fs.lookup("/d/" + path[len("/arch/"):])
        out[path] = (inode.size, inode.content_token == src.content_token)
    return out


def orphan_oids(system):
    """Active TSM objects no live archive inode references."""
    live = {
        inode.tsm_object_id
        for _p, inode in system.archive_fs.walk("/")
        if inode.is_file and inode.tsm_object_id is not None
    }
    return [
        row["object_id"] for row in system.tsm.export_rows()
        if row["filespace"] == system.params.filespace
        and row["object_id"] not in live
    ]


# ----------------------------------------------------------------------
# JobJournal unit tests
# ----------------------------------------------------------------------

def test_journal_views_track_records():
    j = JobJournal()
    j.open_job("copy", "/d", "/arch", src_fs="scratch", dst_fs="archive")
    j.record_chunk("/arch/big", 0, 4 * MB, 8 * MB)
    j.record_chunk("/arch/big", 4 * MB, 4 * MB, 8 * MB)
    j.record_file("/d/a", "/arch/a", 1000)
    assert j.job_meta["op"] == "copy"
    assert j.chunk_ranges("/arch/big") == {(0, 4 * MB), (4 * MB, 4 * MB)}
    assert j.file_done("/arch/a", 1000)
    assert not j.file_done("/arch/a", 999)
    assert j.completed_files() == {"/arch/a": 1000}
    assert j.bytes_recorded() == 8 * MB + 1000

    iid = j.delete_intent("/.trash/root/t1", "/arch/a", 7)
    assert [i.state for i in j.dangling_deletes()] == ["intent"]
    j.delete_fs_done(iid)
    assert [i.state for i in j.dangling_deletes()] == ["fs_done"]
    j.delete_done(iid)
    assert j.dangling_deletes() == []

    lid = j.migration_lease("fta00", ["/arch/a"], punch=True)
    assert [l.paths for l in j.dangling_leases()] == [("/arch/a",)]
    j.migration_done(lid)
    assert j.dangling_leases() == []
    assert len(j) == 9


def test_journal_truncate_is_a_prefix_snapshot():
    j = JobJournal()
    j.open_job("copy", "/d", "/arch")
    iid = j.delete_intent("/.trash/root/t1", "/arch/a", 7)
    j.delete_fs_done(iid)
    j.delete_done(iid)
    # cut between fs_done and done: the intent dangles in state fs_done
    cut = j.truncate(3)
    assert len(cut) == 3
    assert [i.state for i in cut.dangling_deletes()] == ["fs_done"]
    # the original is untouched
    assert j.dangling_deletes() == []
    # id counters re-seed past the replayed prefix: no collision
    nxt = cut.delete_intent("/.trash/root/t2", "/arch/b", None)
    assert nxt > iid


def test_journal_codec_roundtrip(tmp_path):
    j = JobJournal()
    j.open_job("copy", "/d", "/arch", src_fs="scratch", dst_fs="archive")
    j.record_chunk("/arch/big", 0, 4 * MB, 8 * MB)
    iid = j.delete_intent("/.trash/root/t1", "/arch/a", 3)
    j.delete_fs_done(iid)
    j.migration_lease("fta01", ["/arch/x", "/arch/y"], punch=False)

    path = save_journal(j, tmp_path / "journal.json")
    back = load_journal(path)
    assert [(r.seq, r.type, r.data) for r in back.records] == \
        [(r.seq, r.type, r.data) for r in j.records]
    assert back.job_meta == j.job_meta
    assert back.chunk_ranges("/arch/big") == j.chunk_ranges("/arch/big")
    assert [i.state for i in back.dangling_deletes()] == ["fs_done"]
    assert [l.node for l in back.dangling_leases()] == ["fta01"]

    (tmp_path / "bogus.json").write_text('{"format": "nope", "records": []}')
    with pytest.raises(ValueError):
        load_journal(tmp_path / "bogus.json")


# ----------------------------------------------------------------------
# crash faults
# ----------------------------------------------------------------------

def test_crash_fault_fires_at_registered_target():
    env = Environment()
    system = small_site(env)
    inj = system.inject_faults(FaultPlan(3).crash(at=5.0, target="boom"))
    seen = []
    inj.register_crash_target("boom", seen.append)
    env.run()
    assert len(seen) == 1 and isinstance(seen[0], CrashFault)
    assert env.now == pytest.approx(5.0)
    assert inj.injected == {"crash": 1}
    assert inj.crash_misses == []


def test_crash_with_no_registered_target_is_a_recorded_miss():
    env = Environment()
    system = small_site(env)
    inj = system.inject_faults(FaultPlan(3).crash(at=5.0, target="ghost"))
    env.run()
    assert inj.injected == {}
    assert [c.target for c in inj.crash_misses] == ["ghost"]


# ----------------------------------------------------------------------
# pfcp crash + journal resume
# ----------------------------------------------------------------------

def _oracle_archive():
    """Uncrashed reference run: (duration, {path: size})."""
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, LAYOUT)
    job = system.archive("/d", "/arch", cfg_small(**CHUNKY))
    stats = env.run(job.done)
    sizes = {p: sz for p, (sz, _ok) in arch_snapshot(system).items()}
    return stats.duration, sizes


def test_manager_crash_then_resume_is_byte_identical():
    duration, want_sizes = _oracle_archive()

    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, LAYOUT)
    journal = JobJournal(env)
    job = system.archive("/d", "/arch", cfg_small(**CHUNKY), journal=journal)
    env.call_later(0.45 * duration, job.crash)
    with pytest.raises(CrashFault):
        env.run(job.done)
    assert job.stats.aborted
    env.run()  # drain torn I/O

    rjob = system.resume_job(journal, cfg_small(**CHUNKY))
    stats2 = env.run(rjob.done)
    assert not stats2.aborted

    snap = arch_snapshot(system)
    assert {p: sz for p, (sz, _ok) in snap.items()} == want_sizes
    assert all(ok for _sz, ok in snap.values())
    # the resume consulted the journal instead of re-copying everything
    assert stats2.files_skipped + stats2.journal_chunks_skipped > 0
    assert stats2.bytes_copied < TOTAL_BYTES


def test_worker_crash_watchdog_abort_then_resume():
    duration, want_sizes = _oracle_archive()

    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, LAYOUT)
    journal = JobJournal(env)
    job = system.archive("/d", "/arch", cfg_small(**CHUNKY), journal=journal)
    env.call_later(0.45 * duration,
                   lambda: job.crash_rank(job.worker_ranks[0]))
    stats = env.run(job.done)  # the WatchDog stall-aborts; done still fires
    assert stats.aborted

    rjob = system.resume_job(journal, cfg_small(**CHUNKY))
    stats2 = env.run(rjob.done)
    assert not stats2.aborted
    snap = arch_snapshot(system)
    assert {p: sz for p, (sz, _ok) in snap.items()} == want_sizes
    assert all(ok for _sz, ok in snap.values())


def test_resume_from_complete_journal_recopies_nothing():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, LAYOUT)
    journal = JobJournal(env)
    job = system.archive("/d", "/arch", cfg_small(**CHUNKY), journal=journal)
    stats = env.run(job.done)
    assert stats.files_copied == len(LAYOUT)

    rjob = system.resume_job(journal, cfg_small(**CHUNKY))
    stats2 = env.run(rjob.done)
    assert stats2.bytes_copied == 0
    assert stats2.files_copied == 0
    assert stats2.files_skipped == len(LAYOUT)


# ----------------------------------------------------------------------
# two-phase delete crash windows
# ----------------------------------------------------------------------

def _migrated_site():
    """A site with LAYOUT archived and migrated to tape."""
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, LAYOUT)
    env.run(system.archive("/d", "/arch", cfg_small(**CHUNKY)).done)
    env.run(system.migrate_to_tape())
    return env, system


def test_deleter_crash_between_phases_keeps_entry_visible():
    """Satellite: a deleter death after the GPFS unlink but before the
    TSM delete must leave the trashcan entry visible (with its
    ``tsm_object_id``) so recovery can finish the tape side."""
    env, system = _migrated_site()
    entry = system.user_delete("/arch/small/f0")

    def hook(rec):
        if rec.type == "delete_fs_done":
            system.journal.after_append = None
            env.call_later(0.0, system.deleter.crash)

    system.journal.after_append = hook
    system.sweep_trash()  # the sweep's done event dies with the deleter
    env.run()

    # mid-protocol state: fs side gone, entry still visible + attributed
    assert not system.archive_fs.exists(entry.trash_path)
    assert entry.trash_path in system.trashcan.entries
    assert system.trashcan.entries[entry.trash_path].tsm_object_id is not None
    assert system.trashcan.entries[entry.trash_path].deleting
    assert [i.state for i in system.journal.dangling_deletes()] == ["fs_done"]
    # a half-deleted entry must not be undeletable
    assert not system.trashcan.undelete("/arch/small/f0")

    report = env.run(system.recover())
    assert report.delete_intents_found == 1
    assert system.journal.dangling_deletes() == []
    assert entry.trash_path not in system.trashcan.entries
    assert orphan_oids(system) == []


def test_deleter_crash_right_after_intent_recovers_both_sides():
    env, system = _migrated_site()
    entry = system.user_delete("/arch/small/f1")

    def hook(rec):
        if rec.type == "delete_intent":
            system.journal.after_append = None
            env.call_later(0.0, system.deleter.crash)

    system.journal.after_append = hook
    system.sweep_trash()
    env.run()
    assert len(system.journal.dangling_deletes()) == 1

    report = env.run(system.recover())
    assert report.delete_intents_found == 1
    assert not system.archive_fs.exists(entry.trash_path)
    assert entry.trash_path not in system.trashcan.entries
    assert system.journal.dangling_deletes() == []
    assert orphan_oids(system) == []


def test_recovery_replays_unlink_for_untouched_intent():
    """Crash before either side applied: recovery replays the unlink,
    then reconciles the tape side — exactly one targeted lookup."""
    env, system = _migrated_site()
    entry = system.user_delete("/arch/small/f2")
    system.journal.delete_intent(
        entry.trash_path, entry.original_path, entry.tsm_object_id
    )
    assert system.archive_fs.exists(entry.trash_path)

    report = env.run(system.recover())
    assert report.delete_intents_found == 1
    assert report.fs_unlinks_replayed == 1
    assert report.targeted_lookups == 1
    assert not system.archive_fs.exists(entry.trash_path)
    assert entry.trash_path not in system.trashcan.entries
    assert orphan_oids(system) == []


# ----------------------------------------------------------------------
# migration-lease adoption
# ----------------------------------------------------------------------

def test_recovery_adopts_orphaned_migration_batch():
    """Receipts lost after the stores landed server-side: the dangling
    lease lets recovery adopt the tape objects back onto the inodes."""
    env, system = _migrated_site()
    path = "/arch/small/f3"
    inode = system.archive_fs.lookup(path)
    assert inode.tsm_object_id is not None
    # simulate "stored but receipts never applied"
    inode.tsm_object_id = None
    system.journal.migration_lease("fta00", [path], punch=True)

    report = env.run(system.recover())
    assert report.migration_leases_found == 1
    assert report.objects_adopted == 1
    assert report.files_unmigrated == []
    inode = system.archive_fs.lookup(path)
    assert inode.tsm_object_id is not None
    assert inode.is_stub  # the lease's punch was re-applied
    assert system.journal.dangling_leases() == []
    assert orphan_oids(system) == []


def test_recovery_leaves_storeless_lease_for_remigration():
    env, system = _migrated_site()
    env.run(system.archive_fs.write_file("fta0", "/arch/fresh", 2 * MB))
    system.journal.migration_lease("fta0", ["/arch/fresh"], punch=False)

    report = env.run(system.recover())
    assert report.migration_leases_found == 1
    assert report.objects_adopted == 0
    assert report.files_unmigrated == ["/arch/fresh"]
    assert system.journal.dangling_leases() == []
    # the next policy run picks it up
    env.run(system.migrate_to_tape())
    assert system.archive_fs.lookup("/arch/fresh").tsm_object_id is not None


def test_migrator_crash_mid_batch_adopt_and_remigrate():
    env = Environment()
    system = small_site(env)
    seed_scratch(env, system, LAYOUT)
    env.run(system.archive("/d", "/arch", cfg_small(**CHUNKY)).done)

    def hook(rec):
        if rec.type == "lease":
            system.journal.after_append = None
            # past store submission, before any receipt applies
            env.call_later(1.5, system.migrator.crash)

    system.journal.after_append = hook
    system.migrate_to_tape()  # its done event dies with the migrator
    env.run()  # server-side stores run to completion
    assert len(system.journal.dangling_leases()) >= 1

    report = env.run(system.recover())
    assert report.migration_leases_found >= 1
    assert report.objects_adopted >= 1
    env.run(system.migrate_to_tape())  # remigrate whatever recovery left
    for path, inode in system.archive_fs.walk("/"):
        if inode.is_file and path.startswith("/arch/"):
            assert inode.tsm_object_id is not None, path
    assert orphan_oids(system) == []
    assert system.journal.dangling_leases() == []


# ----------------------------------------------------------------------
# chaos harness smoke
# ----------------------------------------------------------------------

def test_chaos_harness_smoke():
    results = run_chaos(seed=0, crashes=2, quiet=True)
    assert [r.ok for r in results] == [True, True], [
        f for r in results for f in r.failures
    ]
