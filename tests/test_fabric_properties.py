"""Property tests for the fluid fabric: conservation + capacity respect
under randomly generated topologies and transfer schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Fabric
from repro.sim import Environment


@st.composite
def _scenario(draw):
    n_nodes = draw(st.integers(2, 5))
    nodes = [f"n{i}" for i in range(n_nodes)]
    # a connected chain plus random extra edges
    edges = [(nodes[i], nodes[i + 1]) for i in range(n_nodes - 1)]
    extra = draw(st.integers(0, 3))
    for _ in range(extra):
        a = draw(st.sampled_from(nodes))
        b = draw(st.sampled_from(nodes))
        if a != b and (a, b) not in edges and (b, a) not in edges:
            edges.append((a, b))
    caps = [draw(st.floats(10.0, 1000.0)) for _ in edges]
    n_xfers = draw(st.integers(1, 8))
    xfers = []
    for _ in range(n_xfers):
        src = draw(st.sampled_from(nodes))
        dst = draw(st.sampled_from([n for n in nodes if n != src]))
        nbytes = draw(st.floats(1.0, 10_000.0))
        start = draw(st.floats(0.0, 50.0))
        xfers.append((src, dst, nbytes, start))
    return edges, caps, xfers


@given(_scenario())
@settings(max_examples=60, deadline=None)
def test_all_transfers_complete_and_conserve_bytes(scenario):
    edges, caps, xfers = scenario
    env = Environment()
    fab = Fabric(env)
    for (a, b), c in zip(edges, caps):
        fab.add_link(a, b, capacity=c)
    results = []

    def launch(src, dst, nbytes, start):
        yield env.timeout(start)
        res = yield fab.transfer(src, dst, nbytes)
        results.append(res)

    for src, dst, nbytes, start in xfers:
        env.process(launch(src, dst, nbytes, start))
    env.run()
    assert len(results) == len(xfers)
    total_sent = sum(x[2] for x in xfers)
    # delivered-bytes accounting matches what was requested
    assert fab.bytes_delivered == pytest.approx(total_sent, rel=1e-6, abs=1e-3)
    # every transfer finished no earlier than physics allows on its path
    for res, (src, dst, nbytes, start) in zip(
        sorted(results, key=lambda r: (r.src, r.dst, r.nbytes)),
        sorted(xfers, key=lambda x: (x[0], x[1], x[2])),
    ):
        route = fab.route(res.src, res.dst)
        min_cap = min(l.capacity for l in route)
        assert res.duration >= res.nbytes / min_cap * (1 - 1e-6)


@given(_scenario())
@settings(max_examples=40, deadline=None)
def test_no_link_oversubscribed_during_run(scenario):
    edges, caps, xfers = scenario
    env = Environment()
    fab = Fabric(env)
    for (a, b), c in zip(edges, caps):
        fab.add_link(a, b, capacity=c)
    violations = []

    def monitor():
        while True:
            yield env.timeout(1.0)
            usage = {}
            for f in fab.active_flows:
                for l in f.links:
                    usage[l.name] = usage.get(l.name, 0.0) + f.rate
            for name, used in usage.items():
                cap = fab.links[name].capacity
                if used > cap * (1 + 1e-6):
                    violations.append((env.now, name, used, cap))

    def launch(src, dst, nbytes, start):
        yield env.timeout(start)
        yield fab.transfer(src, dst, nbytes)

    for src, dst, nbytes, start in xfers:
        env.process(launch(src, dst, nbytes, start))
    env.process(monitor())
    env.run(until=500.0)
    assert violations == []


@given(
    nbytes=st.floats(1.0, 1e9),
    cap=st.floats(1.0, 1e9),
)
@settings(max_examples=60, deadline=None)
def test_single_flow_exact_duration(nbytes, cap):
    env = Environment()
    fab = Fabric(env)
    fab.add_link("a", "b", capacity=cap)
    res = env.run(fab.transfer("a", "b", nbytes))
    assert res.duration == pytest.approx(nbytes / cap, rel=1e-6)
