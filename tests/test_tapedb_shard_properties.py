"""Property tests: the sharded tape index is monolith-transparent.

Three claims carry the metadata-plane refactor, and each is proven here
over hypothesis-generated populations rather than hand-picked examples:

* **Order identity** — ``ShardedTapeIndex.iter_recall_order`` yields the
  byte-identical sequence to flattening the monolithic index's
  ``sort_tape_order``, for any population (duplicate ``(volume, seq)``
  keys, duplicate paths, interleaved removes) and any shard count.  The
  ``gseq`` tie-break is what makes duplicate keys come out in global
  upsert order, exactly as one big insertion-ordered bucket would.
* **Cache transparency** — every lookup through the LRU hot cache
  (including negative lookups and lookups after invalidating upserts
  and removes) answers identically to an uncached index.
* **Bounded memory** — a counting gauge wrapped around the per-shard
  cursors proves the k-way merge never holds more than
  ``shards * batch`` live entries, no matter the population.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.tapedb import (
    BufferGauge,
    LruCache,
    ShardedTapeIndex,
    TapeIndexDB,
    TokenRangeRouter,
    VolumeRangeRouter,
)

# (volume idx, seq, path idx) — small domains on purpose: collisions in
# (volume, seq) index keys and repeated paths are the interesting cases.
ROWS = st.lists(
    st.tuples(
        st.integers(0, 7), st.integers(0, 5), st.integers(0, 30)
    ),
    max_size=60,
)
SHARDS = st.integers(1, 8)


def _vol(v: int) -> str:
    return f"V{v:03d}"


def _path(p: int) -> str:
    return f"/d/f{p:04d}"


def _populate(db, rows, removes=()):
    for oid, (v, s, p) in enumerate(rows, 1):
        db.upsert(oid, _path(p), "fs", _vol(v), s, 100 + oid)
    for oid in removes:
        if 1 <= oid <= len(rows):
            db.remove(oid)


def _oracle(rows, removes=()):
    """The pre-refactor semantics: one insertion-ordered table, recall
    order = flatten(sort_tape_order(all rows))."""
    env = Environment()
    mono = TapeIndexDB(env)
    _populate(mono, rows, removes)
    locs = [mono._row_to_loc(r) for r in mono.table.scan()]
    flat = [
        loc
        for run in TapeIndexDB.sort_tape_order(locs).values()
        for loc in run
    ]
    return mono, flat


@settings(max_examples=80, deadline=None)
@given(rows=ROWS, n_shards=SHARDS, removes=st.sets(st.integers(1, 60), max_size=10))
def test_recall_order_identical_to_monolith(rows, n_shards, removes):
    mono, want = _oracle(rows, removes)
    env = Environment()
    sharded = ShardedTapeIndex(env, n_shards=n_shards, cache_entries=16)
    _populate(sharded, rows, removes)
    assert list(sharded.iter_recall_order(batch=4)) == want
    # the monolith's own streaming path agrees with its snapshot path
    assert list(mono.iter_recall_order(batch=4)) == want
    assert len(sharded) == len(want)


@settings(max_examples=60, deadline=None)
@given(rows=ROWS, n_shards=SHARDS)
def test_token_router_order_identical(rows, n_shards):
    _, want = _oracle(rows)
    env = Environment()
    sharded = ShardedTapeIndex(
        env, router=TokenRangeRouter(n_shards), cache_entries=0
    )
    _populate(sharded, rows)
    assert list(sharded.iter_recall_order(batch=3)) == want


@settings(max_examples=60, deadline=None)
@given(rows=ROWS, n_shards=SHARDS, removes=st.sets(st.integers(1, 60), max_size=10))
def test_lru_cache_is_transparent(rows, n_shards, removes):
    env = Environment()
    cached = ShardedTapeIndex(env, n_shards=n_shards, cache_entries=8)
    bare = ShardedTapeIndex(env, n_shards=n_shards, cache_entries=0)
    for db in (cached, bare):
        _populate(db, rows, removes)

    # interleave lookups with mutations so invalidation paths run hot:
    # repeat each probe to force cache hits on the second pass
    probes = list(range(1, len(rows) + 2)) * 2
    for oid in probes:
        assert cached.location_of(oid) == bare.location_of(oid)
    for _, _, p in rows:
        path = _path(p)
        assert cached.object_for_path("fs", path) == bare.object_for_path(
            "fs", path
        )
        # negative lookups are cached too — and must stay negative
        assert cached.object_for_path("other", path) is None
    # rewrite every surviving row to a new volume: the cache must not
    # serve the old location afterwards
    for oid, (v, s, p) in enumerate(rows, 1):
        if cached.location_of(oid) is None:
            continue
        for db in (cached, bare):
            db.upsert(oid, _path(p), "fs", _vol((v + 1) % 8), s + 1, 7)
        assert cached.location_of(oid) == bare.location_of(oid)
        assert cached.object_for_path("fs", _path(p)) == bare.object_for_path(
            "fs", _path(p)
        )
    assert list(cached.iter_recall_order()) == list(bare.iter_recall_order())


@settings(max_examples=60, deadline=None)
@given(rows=ROWS, n_shards=SHARDS, batch=st.integers(1, 6))
def test_streaming_merge_is_bounded(rows, n_shards, batch):
    env = Environment()
    db = ShardedTapeIndex(env, n_shards=n_shards, cache_entries=0)
    _populate(db, rows)
    gauge = BufferGauge()
    out = list(db.iter_recall_order(batch=batch, gauge=gauge))
    assert gauge.peak <= n_shards * batch
    assert gauge.live == 0  # every batch fully released
    assert gauge.total == len(out) if n_shards == 1 else gauge.total >= len(out)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(0, 9), min_size=1, max_size=50),
    capacity=st.integers(1, 6),
)
def test_lru_eviction_and_hit_accounting(keys, capacity):
    cache = LruCache(capacity)
    model: dict[int, int] = {}
    order: list[int] = []  # LRU order, oldest first
    for k in keys:
        found, got = cache.get(k)
        if k in order:
            assert found and got == model[k]
            order.remove(k)
            order.append(k)  # refresh recency, mirroring the cache
        else:
            assert not found
        cache.put(k, k * 2)
        model[k] = k * 2
        if k in order:
            order.remove(k)
        order.append(k)
        if len(order) > capacity:
            order.pop(0)
        assert len(cache) == len(order)
    assert cache.hits + cache.misses == len(keys)


def test_volume_range_router_covers_all_shards():
    r = VolumeRangeRouter.for_numbered(n_volumes=40, n_shards=8)
    assert r.n_shards == 8
    seen = {r.shard_of(f"VOL{v:06d}") for v in range(40)}
    assert seen == set(range(8))
    # boundary volumes land in the right half-open range
    assert r.shard_of("VOL000000") == 0
    assert r.shard_of("VOL000005") == 1
