"""Tests for the GPFS policy-language parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disksim import DiskArray
from repro.pfs import GpfsFileSystem, ListRule, MigrateRule, PlacementRule, StoragePool
from repro.pfs.inode import FileKind, Inode
from repro.pfs.policy_lang import PolicyParseError, parse_policy
from repro.sim import Environment

MB = 1_000_000


def _file(path="/f", size=0, uid="root", pool="fast", age=0.0, now=100.0):
    ino = Inode(FileKind.FILE, now - age, uid=uid)
    ino.size = size
    ino.pool = pool
    ino.atime = now - age
    ino.mtime = now - age
    return path, ino, now


def test_parse_placement_rule():
    rules = parse_policy("RULE 'small' SET POOL 'slow' WHERE FILE_SIZE < 1 MB")
    assert len(rules) == 1
    r = rules[0]
    assert isinstance(r, PlacementRule)
    assert r.pool == "slow"
    assert r.matches(*_file(size=1000))
    assert not r.matches(*_file(size=2 * MB))


def test_parse_list_rule_with_like():
    rules = parse_policy(
        "RULE 'cand' LIST 'tape' WHERE PATH_NAME LIKE '/proj/%' "
        "AND FILE_SIZE >= 100"
    )
    r = rules[0]
    assert isinstance(r, ListRule)
    assert r.list_name == "tape"
    assert r.matches(*_file(path="/proj/x/data", size=200))
    assert not r.matches(*_file(path="/other/data", size=200))
    assert not r.matches(*_file(path="/proj/x/data", size=50))


def test_parse_migrate_with_threshold_and_weight():
    rules = parse_policy(
        "RULE 'spill' MIGRATE FROM POOL 'fast' THRESHOLD(90, 70) "
        "TO POOL 'hsm' WEIGHT(FILE_SIZE) WHERE MODIFICATION_AGE > 30 DAYS"
    )
    r = rules[0]
    assert isinstance(r, MigrateRule)
    assert r.from_pool == "fast"
    assert r.to_pool == "hsm"
    assert r.threshold_high == 90
    assert r.threshold_low == 70
    path, ino, now = _file(size=5 * MB, age=40 * 86400)
    assert r.matches(path, ino, now)
    assert r.weight(path, ino, now) == 5 * MB
    fresh = _file(size=5 * MB, age=86400)
    assert not r.matches(*fresh)


def test_age_units_and_size_units():
    rules = parse_policy(
        "RULE 'a' LIST 'x' WHERE ACCESS_AGE > 2 HOURS AND FILE_SIZE < 1 GB"
    )
    r = rules[0]
    assert r.matches(*_file(size=MB, age=3 * 3600, now=1e6))
    assert not r.matches(*_file(size=MB, age=3600, now=1e6))


def test_boolean_precedence_and_parens():
    rules = parse_policy(
        "RULE 'p' LIST 'x' WHERE FILE_SIZE > 10 AND NAME LIKE '%.dat' "
        "OR NAME = 'special'"
    )
    r = rules[0]
    assert r.matches(*_file(path="/d/special", size=1))
    assert r.matches(*_file(path="/d/big.dat", size=100))
    assert not r.matches(*_file(path="/d/big.txt", size=100))

    rules = parse_policy(
        "RULE 'q' LIST 'x' WHERE FILE_SIZE > 10 AND "
        "(NAME LIKE '%.dat' OR NAME = 'special')"
    )
    r = rules[0]
    assert not r.matches(*_file(path="/d/special", size=1))


def test_not_operator():
    r = parse_policy("RULE 'n' LIST 'x' WHERE NOT NAME LIKE '%.tmp'")[0]
    assert r.matches(*_file(path="/d/keep.dat", size=1))
    assert not r.matches(*_file(path="/d/junk.tmp", size=1))


def test_user_and_pool_attrs():
    r = parse_policy(
        "RULE 'u' LIST 'x' WHERE USER_ID = 'alice' AND POOL_NAME = 'fast'"
    )[0]
    assert r.matches(*_file(uid="alice", pool="fast", size=1))
    assert not r.matches(*_file(uid="bob", pool="fast", size=1))


def test_string_escaping():
    r = parse_policy("RULE 'e' LIST 'x' WHERE NAME = 'it''s'")[0]
    assert r.matches(*_file(path="/d/it's", size=1))


def test_comments_and_multiple_rules():
    rules = parse_policy(
        """
        /* placement tier for small stuff */
        RULE 'small' SET POOL 'slow' WHERE FILE_SIZE < 1 MB
        RULE 'rest' SET POOL 'fast'
        RULE 'cand' LIST 'tape' WHERE TRUE
        """
    )
    assert len(rules) == 3
    assert rules[1].where is None


def test_parse_errors():
    for bad in (
        "",  # empty
        "RULE 'x'",  # no clause
        "RULE 'x' SET POOL",  # missing pool name
        "RULE 'x' LIST 'l' WHERE FILE_SIZE >",  # dangling operator
        "RULE 'x' LIST 'l' WHERE NOSUCH = 1",  # unknown attribute
        "RULE 'x' FROB 'l'",  # unknown verb
        "RULE 'x' LIST 'l' WHERE FILE_SIZE ~ 3",  # bad char
    ):
        with pytest.raises(PolicyParseError):
            parse_policy(bad)


def test_parsed_rules_run_through_the_engine():
    """End-to-end: text -> rules -> policy scan on a live namespace."""
    env = Environment()
    fs = GpfsFileSystem(env, "fs", metadata_op_time=0.0)
    arr = DiskArray(env, "a", capacity_bytes=1e12, bandwidth=1e9, seek_time=0.0)
    fs.add_pool(StoragePool("fast", [arr]), default=True)

    def seed():
        fs.mkdir("/proj", parents=True)
        yield fs.write_file("c", "/proj/big.dat", 50 * MB)
        yield fs.write_file("c", "/proj/small.dat", 1000)
        yield fs.write_file("c", "/proj/junk.tmp", 50 * MB)

    env.run(env.process(seed()))
    rules = parse_policy(
        "RULE 'cand' LIST 'tape' WHERE FILE_SIZE >= 1 MB "
        "AND NOT NAME LIKE '%.tmp'"
    )
    res = env.run(fs.policy.apply(rules))
    assert [h.path for h in res.lists["tape"]] == ["/proj/big.dat"]


@given(
    size=st.integers(0, 10**13),
    cutoff=st.integers(1, 10**12),
)
@settings(max_examples=100, deadline=None)
def test_size_comparison_agrees_with_python(size, cutoff):
    r = parse_policy(f"RULE 'p' LIST 'x' WHERE FILE_SIZE < {cutoff}")[0]
    assert r.matches(*_file(size=size)) == (size < cutoff)
