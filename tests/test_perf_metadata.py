"""Tier-1 smoke of the M* metadata scenarios (reduced population).

The full populations run in ``benchmarks/test_m1_metadata.py`` and the
metadata-smoke CI job; here the same scenario code runs at a few
thousand files so the determinism and bounded-memory contracts are
checked on every test run, not just the bench tier.
"""

import pytest

from repro.perf import run_suite
from repro.perf.metadata import (
    M_BATCH,
    m1_index_scan,
    m2_recall_sort,
    m3_reconcile,
    n_volumes,
    synth_path,
    synth_rows,
)

POP = 4000


def test_synth_rows_deterministic_and_shaped():
    rows = list(synth_rows(POP, seed=1))
    assert len(rows) == POP
    assert rows == list(synth_rows(POP, seed=1))
    assert rows != list(synth_rows(POP, seed=2))
    # per-volume seq is strictly increasing — a migrator's append order
    last: dict[str, int] = {}
    for r in rows:
        assert r["seq"] > last.get(r["volume"], 0)
        last[r["volume"]] = r["seq"]
    assert len(last) == n_volumes(POP)
    assert rows[7]["path"] == synth_path(7)


@pytest.mark.parametrize("fn", [m1_index_scan, m2_recall_sort, m3_reconcile])
def test_m_scenarios_deterministic_headlines(fn):
    a, b = fn(pop=POP), fn(pop=POP)
    assert a.headline == b.headline
    assert a.headline["files"] == POP
    assert a.headline["end_time"] > 0


def test_m1_scan_is_bounded_and_complete():
    out = m1_index_scan(pop=POP)
    # 2 volumes at this tier -> 2 shards; bound is shards * batch
    assert out.headline["peak_live"] <= 2 * M_BATCH
    assert out.headline["volumes"] == 2.0
    assert out.extras["scan_files_per_s"] > 0


def test_m2_cache_split_accounts_every_lookup():
    out = m2_recall_sort(pop=POP)
    h = out.headline
    assert h["cache_hits"] + h["cache_misses"] > 0
    assert h["found"] <= h["lookups"]
    # 10%-of-population only binds at scale; here the tight bound applies
    assert h["peak_live"] <= 2 * M_BATCH


def test_m3_reconcile_purges_exactly_the_orphans():
    out = m3_reconcile(pop=POP)
    h = out.headline
    assert h["remaining"] == h["files"] - h["orphans"]
    assert 0 < h["orphans"] < 0.1 * POP


def test_m_scenarios_registered_in_suite():
    report = run_suite(["m3_reconcile"])
    m = report["scenarios"]["m3_reconcile"]
    assert "extra" in m and m["extra"]["reconcile_files_per_s"] > 0
