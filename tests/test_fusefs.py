"""Tests for the ArchiveFUSE chunking layer."""

import pytest

from repro.disksim import DiskArray
from repro.fusefs import ArchiveFuseFS
from repro.pfs import GpfsFileSystem, StoragePool
from repro.sim import Environment, SimulationError

GB = 1_000_000_000


def make_stack(env, chunk=2 * GB):
    fs = GpfsFileSystem(env, "arch", metadata_op_time=0.0)
    arrays = [
        DiskArray(env, f"a{i}", capacity_bytes=1e15, bandwidth=2e9, seek_time=0.0)
        for i in range(2)
    ]
    fs.add_pool(StoragePool("fast", arrays), default=True)
    return fs, ArchiveFuseFS(fs, chunk_size=chunk)


def test_plan_chunks_layout():
    env = Environment()
    fs, fuse = make_stack(env, chunk=2 * GB)
    refs = fuse.plan_chunks("/p/big", 5 * GB)
    assert [r.length for r in refs] == [2 * GB, 2 * GB, 1 * GB]
    assert [r.offset for r in refs] == [0, 2 * GB, 4 * GB]
    assert refs[0].path.startswith("/.fuse/p/big/")


def test_create_write_read_roundtrip():
    env = Environment()
    fs, fuse = make_stack(env)

    def go():
        refs = yield fuse.create_large("/p/big", 5 * GB)
        assert len(refs) == 3
        for i in range(3):
            yield fuse.write_chunk("client", "/p/big", i)
        assert fuse.is_complete("/p/big")
        yield fuse.read_chunk("client", "/p/big", 1)

    env.run(env.process(go()))
    assert fuse.is_fuse_file("/p/big")
    assert fuse.logical_size("/p/big") == 5 * GB
    # chunk files are real files with real allocations
    assert fs.pool("fast").used_bytes == 5 * GB


def test_good_and_pending_chunks_restart_marks():
    env = Environment()
    fs, fuse = make_stack(env)

    def go():
        yield fuse.create_large("/p/big", 6 * GB)
        yield fuse.write_chunk("c", "/p/big", 0)
        yield fuse.write_chunk("c", "/p/big", 2)

    env.run(env.process(go()))
    assert fuse.good_chunks("/p/big") == [0, 2]
    assert fuse.pending_chunks("/p/big") == [1]
    assert not fuse.is_complete("/p/big")
    fuse.mark_bad("/p/big", 0)
    assert fuse.pending_chunks("/p/big") == [0, 1]


def test_mark_bad_bounds():
    env = Environment()
    fs, fuse = make_stack(env)
    env.run(fuse.create_large("/p/big", 2 * GB))
    with pytest.raises(SimulationError):
        fuse.mark_bad("/p/big", 5)


def test_write_chunk_out_of_range():
    env = Environment()
    fs, fuse = make_stack(env)
    env.run(fuse.create_large("/p/big", 2 * GB))
    with pytest.raises(SimulationError):
        env.run(fuse.write_chunk("c", "/p/big", 7))


def test_non_fuse_file_rejected():
    env = Environment()
    fs, fuse = make_stack(env)
    env.run(fs.write_file("c", "/plain", 100))
    assert not fuse.is_fuse_file("/plain")
    with pytest.raises(SimulationError):
        fuse.chunks("/plain")


def test_unlink_moves_chunks_to_trash():
    env = Environment()
    fs, fuse = make_stack(env)

    def go():
        yield fuse.create_large("/p/big", 4 * GB)
        for i in range(2):
            yield fuse.write_chunk("c", "/p/big", i)
        trashed = yield fuse.unlink("/p/big")
        return trashed

    trashed = env.run(env.process(go()))
    assert len(trashed) == 2
    assert not fs.exists("/p/big")
    for t in trashed:
        assert t.startswith("/.trashcan/")
        assert fs.exists(t)
    # allocations still held by the trashed chunks (freed by sync delete)
    assert fs.pool("fast").used_bytes == 4 * GB


def test_overwrite_intercepts_old_chunks():
    """§6.3: re-creating a logical file trashes the old chunks instead of
    orphaning their tape copies."""
    env = Environment()
    fs, fuse = make_stack(env)

    def go():
        yield fuse.create_large("/p/big", 4 * GB)
        yield fuse.write_chunk("c", "/p/big", 0)
        yield fuse.write_chunk("c", "/p/big", 1)
        yield fuse.create_large("/p/big", 6 * GB)  # overwrite

    env.run(env.process(go()))
    trash_entries = [
        p for p, n in fs.walk("/.trashcan") if n.is_file
    ]
    assert len(trash_entries) == 2
    assert fuse.logical_size("/p/big") == 6 * GB
    assert fuse.pending_chunks("/p/big") == [0, 1, 2]


def test_zero_byte_logical_file():
    env = Environment()
    fs, fuse = make_stack(env)
    refs = env.run(fuse.create_large("/p/empty", 0))
    assert refs == []
    assert fuse.logical_size("/p/empty") == 0
    assert fuse.is_complete("/p/empty")


def test_invalid_chunk_size():
    env = Environment()
    fs, _ = make_stack(env)
    with pytest.raises(SimulationError):
        ArchiveFuseFS(fs, chunk_size=0)
