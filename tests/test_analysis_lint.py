"""Unit tests for the RA001-RA005 static rules and the lint runner.

Each rule gets a minimal synthetic violation (written to tmp_path) plus
a minimal clean counterpart; the last test pins the acceptance
criterion that the shipped tree lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.core import run_lint
from repro.analysis.lint import default_rules, main
from repro.analysis.rules_determinism import DeterminismRule
from repro.analysis.rules_protocol import PayloadSchemaRule, ProtocolRule
from repro.analysis.rules_queues import (
    BlockingReceiveRule,
    QueueComplexityRule,
    QueueDisciplineRule,
)

REPO = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, source, rules, name="mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([tmp_path], rules)


# ---------------------------------------------------------------- RA001
def test_ra001_flags_host_entropy_and_clocks(tmp_path):
    result = lint_source(
        tmp_path,
        "import random\n"
        "import time\n"
        "def jitter():\n"
        "    return random.random() + time.time()\n",
        [DeterminismRule()],
    )
    messages = [f.message for f in result.findings]
    assert any("import of 'random'" in m for m in messages)
    assert any("random.random" in m for m in messages)
    assert any("time.time" in m for m in messages)
    # plain `import time` is fine; only the call is nondeterministic
    assert not any("'time'" in m for m in messages)


def test_ra001_flags_set_iteration(tmp_path):
    result = lint_source(
        tmp_path,
        "def walk(items):\n"
        "    for x in set(items):\n"
        "        yield x\n"
        "    return [y for y in {1, 2}]\n",
        [DeterminismRule()],
    )
    assert len(result.findings) == 2
    assert all("set" in f.message for f in result.findings)


def test_ra001_allowlists_the_stream_factory(tmp_path):
    result = lint_source(
        tmp_path,
        "import random\n",
        [DeterminismRule()],
        name="sim/rng.py",
    )
    assert result.ok


# ---------------------------------------------------------------- RA002
PROTO_HEADER = "TAG_A = 1\nTAG_B = 2\n"


def test_ra002_orphan_tags(tmp_path):
    result = lint_source(
        tmp_path,
        PROTO_HEADER
        + "def sender(comm, p):\n"
        "    comm.send(0, 1, p, TAG_A)\n"
        "def receiver(comm):\n"
        "    return comm.recv(1, 0, TAG_A)\n",
        [ProtocolRule()],
    )
    messages = [f.message for f in result.findings]
    assert any("TAG_B is declared but never sent" in m for m in messages)
    assert any("TAG_B" in m and "no receive" in m for m in messages)
    assert not any("TAG_A" in m for m in messages)


def test_ra002_wildcard_recv_covers_all_tags(tmp_path):
    result = lint_source(
        tmp_path,
        PROTO_HEADER
        + "def sender(comm, p):\n"
        "    comm.send(0, 1, p, TAG_A)\n"
        "    comm.send(0, 1, p, TAG_B)\n"
        "def receiver(comm):\n"
        "    return comm.recv(1)\n",
        [ProtocolRule()],
    )
    assert result.ok


def test_ra002_non_exhaustive_dispatch(tmp_path):
    source = (
        PROTO_HEADER
        + "def sender(comm, p):\n"
        "    comm.send(0, 1, p, TAG_A)\n"
        "    comm.send(0, 1, p, TAG_B)\n"
        "def dispatch(comm):\n"
        "    msg = comm.recv(1)\n"
        "    if msg.tag == TAG_A:\n"
        "        return 'a'\n"
    )
    result = lint_source(tmp_path, source, [ProtocolRule()])
    assert any("non-exhaustive tag dispatch" in f.message for f in result.findings)
    assert any("TAG_B" in f.message for f in result.findings)

    # a terminal else makes the same chain exhaustive
    fixed = source + "    else:\n        return 'other'\n"
    assert lint_source(tmp_path, fixed, [ProtocolRule()]).ok


# ---------------------------------------------------------------- RA003
def test_ra003_queue_mutation_outside_manager(tmp_path):
    result = lint_source(
        tmp_path,
        "from collections import deque\n"
        "class Manager:\n"
        "    def __init__(self):\n"
        "        self.dir_q = deque()\n"
        "    def push(self, j):\n"
        "        self.dir_q.append(j)\n"
        "class Stealer:\n"
        "    def steal(self, mgr):\n"
        "        return mgr.dir_q.popleft()\n"
        "def drain(mgr):\n"
        "    mgr.copy_q.clear()\n"
        "    mgr.idle['worker'].append(3)\n"
        "    mgr.tape_q = deque()\n",
        [QueueDisciplineRule()],
    )
    flagged = sorted(f.line for f in result.findings)
    assert flagged == [9, 11, 12, 13]
    assert all("single-writer" in f.message for f in result.findings)


# ---------------------------------------------------------------- RA004
PAYLOAD_HEADER = (
    "TAG_A = 1\nTAG_B = 2\n"
    "class Ping: pass\n"
    "class Pong: pass\n"
    "TAG_PAYLOADS = {TAG_A: (Ping,), TAG_B: (Pong,)}\n"
)


def test_ra004_wrong_family_and_raw_payloads(tmp_path):
    result = lint_source(
        tmp_path,
        PAYLOAD_HEADER
        + "def bad(comm):\n"
        "    comm.send(0, 1, ('raw',), TAG_A)\n"
        "    comm.send(0, 1, Pong(), TAG_A)\n"
        "    p = Pong()\n"
        "    comm.send(0, 1, p, TAG_A)\n"
        "def good(comm):\n"
        "    comm.send(0, 1, Ping(), TAG_A)\n"
        "    comm.broadcast(0, Pong(), TAG_B)\n",
        [PayloadSchemaRule()],
    )
    assert len(result.findings) == 3
    assert any("raw tuple" in f.message for f in result.findings)
    assert sum("Pong" in f.message for f in result.findings) >= 2


def test_ra004_missing_table_entry(tmp_path):
    result = lint_source(
        tmp_path,
        "TAG_A = 1\nTAG_X = 9\n"
        "class Ping: pass\n"
        "TAG_PAYLOADS = {TAG_A: (Ping,)}\n"
        "def f(comm):\n"
        "    comm.send(0, 1, Ping(), TAG_X)\n",
        [PayloadSchemaRule()],
    )
    assert any("no entry in TAG_PAYLOADS" in f.message for f in result.findings)


# ---------------------------------------------------------------- RA005
def test_ra005_raced_receive_without_cancel(tmp_path):
    source = (
        "def leaky(env, comm):\n"
        "    while True:\n"
        "        wake = env.timeout(5)\n"
        "        incoming = comm.recv(2)\n"
        "        yield wake | incoming\n"
    )
    result = lint_source(tmp_path, source, [BlockingReceiveRule()])
    assert len(result.findings) == 1
    assert ".cancel() path" in result.findings[0].message

    fixed = source + (
        "        if not incoming.triggered:\n"
        "            incoming.cancel()\n"
    )
    assert lint_source(tmp_path, fixed, [BlockingReceiveRule()]).ok


def test_ra005_inline_receive_in_race(tmp_path):
    result = lint_source(
        tmp_path,
        "def leaky(env, comm):\n"
        "    yield env.timeout(5) | comm.recv(2)\n",
        [BlockingReceiveRule()],
    )
    assert len(result.findings) == 1
    assert "never be" in result.findings[0].message


# ------------------------------------------------------- runner / CLI
def test_noqa_suppression(tmp_path):
    result = lint_source(
        tmp_path,
        "import random  # noqa:RA001\n"
        "import secrets  # noqa\n"
        "def f():\n"
        "    return random.random()\n",
        [DeterminismRule()],
    )
    assert result.suppressed == 2
    assert len(result.findings) == 1  # the un-suppressed call on line 4
    assert result.findings[0].line == 4


def test_cli_json_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    status = main([str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 1
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["code"] == "RA001"
    assert payload["findings"][0]["line"] == 1


def test_cli_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert main([str(tmp_path), "--select", "RA003"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main([str(tmp_path), "--select", "RA999"])


def test_shipped_tree_lints_clean():
    """Acceptance criterion: the codebase ships lint-clean."""
    result = run_lint(
        [REPO / "src", REPO / "benchmarks"], default_rules()
    )
    assert result.ok, "\n".join(f.format() for f in result.findings)
    assert result.files_checked > 50


# ---------------------------------------------------------------- RA006
def test_ra006_flags_indexed_pop_and_remove_in_engine(tmp_path):
    result = lint_source(
        tmp_path,
        "class Store:\n"
        "    def cancel(self, g):\n"
        "        self._getq.remove(g)\n"
        "    def drain(self):\n"
        "        return self._putq.pop(0)\n",
        [QueueComplexityRule()],
        name="repro/sim/bad_store.py",
    )
    messages = [f.message for f in result.findings]
    assert len(messages) == 2
    assert any("_getq.remove" in m and "tombstone" in m for m in messages)
    assert any("_putq.pop" in m and "popleft" in m for m in messages)


def test_ra006_allows_o1_queue_idioms(tmp_path):
    result = lint_source(
        tmp_path,
        "class Store:\n"
        "    def ok(self, g):\n"
        "        self._getq.append(g)\n"
        "        self._getq.popleft()\n"
        "        self._call_pool.pop()\n"  # tail pop is O(1)
        "        self.users.remove(g)\n",  # not a covered queue attribute
        [QueueComplexityRule()],
        name="repro/netsim/good.py",
    )
    assert result.findings == []


def test_ra006_only_covers_engine_packages(tmp_path):
    result = lint_source(
        tmp_path,
        "def helper(q):\n"
        "    q._getq.remove(1)\n"
        "    q._getq.pop(0)\n",
        [QueueComplexityRule()],
        name="repro/pftool/elsewhere.py",
    )
    assert result.findings == []


# ---------------------------------------------------------------- RA007
def test_ra007_flags_unjournalled_archive_mutation(tmp_path):
    from repro.analysis.rules_recovery import JournalIntentRule

    result = lint_source(
        tmp_path,
        "class Deleter:\n"
        "    def delete(self, e):\n"
        "        def _proc():\n"
        "            yield self.fs.unlink_op(e.trash_path)\n"
        "            ok = yield self.tsm.delete_object(e.oid)\n"
        "        self.env.process(_proc())\n",
        [JournalIntentRule()],
        name="repro/archive/bad_deleter.py",
    )
    messages = [f.message for f in result.findings]
    assert len(messages) == 2
    assert any("unlink_op" in m for m in messages)
    assert any("delete_object" in m for m in messages)


def test_ra007_accepts_journal_bracket(tmp_path):
    from repro.analysis.rules_recovery import JournalIntentRule

    result = lint_source(
        tmp_path,
        "class Deleter:\n"
        "    def delete(self, e):\n"
        "        def _proc():\n"
        "            intent = self.journal.delete_intent(e.t, e.o, e.oid)\n"
        "            yield self.fs.unlink_op(e.trash_path)\n"
        "            ok = yield self.tsm.delete_object(e.oid)\n"
        "            self.journal.delete_done(intent)\n"
        "        self.env.process(_proc())\n",
        [JournalIntentRule()],
        name="repro/archive/good_deleter.py",
    )
    assert result.findings == []


def test_ra007_journal_write_must_precede_the_mutation(tmp_path):
    from repro.analysis.rules_recovery import JournalIntentRule

    # a journal call *after* the mutator is not a write-ahead intent
    result = lint_source(
        tmp_path,
        "def sweep(self, e):\n"
        "    yield self.fs.unlink_op(e.trash_path)\n"
        "    self.journal.delete_intent(e.t, e.o, None)\n",
        [JournalIntentRule()],
        name="repro/hsm/manager_ext.py",
    )
    assert len(result.findings) == 1
    assert "unlink_op" in result.findings[0].message


def test_ra007_only_covers_recovery_protocol_paths(tmp_path):
    from repro.analysis.rules_recovery import JournalIntentRule

    result = lint_source(
        tmp_path,
        "def walk_and_delete(self, oid):\n"
        "    yield self.tsm.delete_object(oid)\n",
        [JournalIntentRule()],
        name="repro/hsm/reconcile_like.py",  # legacy walk stays exempt
    )
    assert result.findings == []


# ---------------------------------------------------------------- RA008
def test_ra008_flags_module_global_written_by_two_processes(tmp_path):
    from repro.analysis.rules_races import SharedMutableStateRule

    result = lint_source(
        tmp_path,
        "registry = {}\n"
        "seen = set()\n"
        "def worker(env):\n"
        "    yield env.timeout(1)\n"
        "    registry['w'] = 1\n"
        "    seen.add('w')\n"
        "def manager(env):\n"
        "    yield env.timeout(1)\n"
        "    registry['m'] = 2\n"
        "    seen.add('m')\n",
        [SharedMutableStateRule()],
    )
    names = {f.message.split("'")[1] for f in result.findings}
    assert names == {"registry", "seen"}
    assert len(result.findings) == 4  # every write site is a finding


def test_ra008_class_attribute_counts_as_shared(tmp_path):
    from repro.analysis.rules_races import SharedMutableStateRule

    result = lint_source(
        tmp_path,
        "class Hub:\n"
        "    waiters = []\n"
        "def a(env):\n"
        "    yield env.timeout(1)\n"
        "    Hub.waiters.append(1)\n"
        "def b(env):\n"
        "    yield env.timeout(1)\n"
        "    Hub.waiters.append(2)\n",
        [SharedMutableStateRule()],
    )
    assert len(result.findings) == 2
    assert "Hub.waiters" in result.findings[0].message


def test_ra008_single_writer_and_locals_are_clean(tmp_path):
    from repro.analysis.rules_races import SharedMutableStateRule

    result = lint_source(
        tmp_path,
        "registry = {}\n"
        "def only_writer(env):\n"
        "    yield env.timeout(1)\n"
        "    registry['k'] = 1\n"
        "    registry['k2'] = 2\n"
        "def shadowing(env):\n"
        "    registry = {}\n"  # local shadows the global: not shared
        "    yield env.timeout(1)\n"
        "    registry['k'] = 3\n"
        "def plain_reader(env):\n"
        "    return registry.get('k')\n",  # not a generator, and a read
        [SharedMutableStateRule()],
    )
    assert result.findings == []


# ---------------------------------------------------------------- RA009
def test_ra009_flags_bare_blocking_wait_in_service_code(tmp_path):
    from repro.analysis.rules_races import UnboundedServiceWaitRule

    result = lint_source(
        tmp_path,
        "def serve(self, env):\n"
        "    while True:\n"
        "        msg = yield self.comm.recv(0)\n"
        "        item = yield self.queue.get()\n",
        [UnboundedServiceWaitRule()],
        name="repro/scheduler/service_like.py",
    )
    assert len(result.findings) == 2
    assert "timeout or cancellation" in result.findings[0].message


def test_ra009_timeout_race_and_non_service_paths_are_clean(tmp_path):
    from repro.analysis.rules_races import UnboundedServiceWaitRule

    clean = (
        "def serve(self, env):\n"
        "    while True:\n"
        "        got = yield self.queue.get() | env.timeout(5)\n"
        "        yield env.timeout(1)\n"
    )
    result = lint_source(
        tmp_path,
        clean,
        [UnboundedServiceWaitRule()],
        name="repro/scheduler/service_like.py",
    )
    assert result.findings == []
    # the same bare wait outside service paths is out of scope
    result = lint_source(
        tmp_path,
        "def worker(self, env):\n"
        "    msg = yield self.comm.recv(1)\n",
        [UnboundedServiceWaitRule()],
        name="repro/pftool/worker_like.py",
    )
    assert result.findings == []


# ---------------------------------------------------------------- RA010
def test_ra010_flags_zero_delay_without_priority(tmp_path):
    from repro.analysis.rules_races import UnorderedZeroDelayRule

    result = lint_source(
        tmp_path,
        "def kick(env, fn):\n"
        "    env.call_later(0, fn)\n"
        "    env.call_later(0.0, fn)\n",
        [UnorderedZeroDelayRule()],
    )
    assert len(result.findings) == 2
    assert "priority=" in result.findings[0].message


def test_ra010_pinned_priority_or_real_delay_is_clean(tmp_path):
    from repro.analysis.rules_races import UnorderedZeroDelayRule

    result = lint_source(
        tmp_path,
        "def kick(env, fn):\n"
        "    env.call_later(0, fn, priority=0)\n"
        "    env.call_later(1.5, fn)\n",
        [UnorderedZeroDelayRule()],
    )
    assert result.findings == []


# ---------------------------------------------------------------- RA011
def test_ra011_flags_loop_invariant_call_later(tmp_path):
    from repro.analysis.rules_races import UnbatchedTimerLoopRule

    result = lint_source(
        tmp_path,
        "def fanout(env, fns):\n"
        "    for fn in fns:\n"
        "        env.call_later(0.5, fn)\n"
        "def drain(env, q):\n"
        "    while q:\n"
        "        fn = q.pop()\n"
        "        env.call_later(1.0, fn)\n",
        [UnbatchedTimerLoopRule()],
    )
    assert len(result.findings) == 2
    assert "call_later_batch" in result.findings[0].message


def test_ra011_exempts_varying_delay_yields_and_priorities(tmp_path):
    from repro.analysis.rules_races import UnbatchedTimerLoopRule

    result = lint_source(
        tmp_path,
        "def staggered(env, jobs):\n"
        "    for i, fn in enumerate(jobs):\n"
        "        env.call_later(0.1 * i, fn)\n"
        "def paced(env, fns):\n"
        "    for fn in fns:\n"
        "        yield env.timeout(1.0)\n"
        "        env.call_later(0.5, fn)\n"
        "def ranked(env, fns):\n"
        "    for p, fn in fns:\n"
        "        env.call_later(1.0, fn, priority=p)\n"
        "def batched(env, fns):\n"
        "    env.call_later_batch(0.5, fns)\n",
        [UnbatchedTimerLoopRule()],
    )
    assert result.findings == []


def test_ra011_ignores_call_later_inside_nested_def(tmp_path):
    from repro.analysis.rules_races import UnbatchedTimerLoopRule

    result = lint_source(
        tmp_path,
        "def make(env, fns):\n"
        "    out = []\n"
        "    for fn in fns:\n"
        "        def later():\n"
        "            env.call_later(0.5, fn)\n"
        "        out.append(later)\n"
        "    return out\n",
        [UnbatchedTimerLoopRule()],
    )
    assert result.findings == []


# ---------------------------------------------------------------- RA012
def test_ra012_flags_silently_swallowed_fault(tmp_path):
    from repro.analysis.rules_health import SilentFaultSwallowRule

    result = lint_source(
        tmp_path,
        "from repro.faults import TsmFault, DriveFault\n"
        "def commit(tsm):\n"
        "    try:\n"
        "        tsm.begin_txn()\n"
        "    except TsmFault:\n"
        "        pass\n"
        "    try:\n"
        "        tsm.mount()\n"
        "    except (OSError, DriveFault) as exc:\n"
        "        log = str(exc)\n",
        [SilentFaultSwallowRule()],
    )
    messages = [f.message for f in result.findings]
    assert len(messages) == 2
    assert any("except TsmFault" in m for m in messages)
    assert any("except DriveFault" in m for m in messages)
    assert all("without recording" in m for m in messages)


def test_ra012_recording_or_reraise_is_clean(tmp_path):
    from repro.analysis.rules_health import SilentFaultSwallowRule

    result = lint_source(
        tmp_path,
        "from repro.faults import TsmFault, DriveFault, CatalogFault\n"
        "def commit(tsm, view, breaker):\n"
        "    try:\n"
        "        tsm.begin_txn()\n"
        "    except TsmFault:\n"
        "        view.on_fault('tsm', 'tsm')\n"
        "    try:\n"
        "        tsm.mount()\n"
        "    except DriveFault:\n"
        "        breaker.record_failure()\n"
        "    try:\n"
        "        tsm.lookup()\n"
        "    except CatalogFault as exc:\n"
        "        raise RuntimeError('fatal') from exc\n",
        [SilentFaultSwallowRule()],
    )
    assert result.findings == []


def test_ra012_ignores_non_fault_exceptions(tmp_path):
    from repro.analysis.rules_health import SilentFaultSwallowRule

    result = lint_source(
        tmp_path,
        "def best_effort(fn):\n"
        "    try:\n"
        "        fn()\n"
        "    except (KeyError, ValueError):\n"
        "        pass\n"
        "    except Exception:\n"
        "        pass\n",
        [SilentFaultSwallowRule()],
    )
    assert result.findings == []


# ----------------------------------------------------- CLI formats / exits
def test_cli_sarif_output_is_valid_sarif(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "def kick(env, fn):\n"
        "    env.call_later(0, fn)\n"
    )
    code = main([str(tmp_path), "--format", "sarif", "--select", "RA010"])
    assert code == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analysis"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"RA001", "RA008", "RA009", "RA010", "RA011"} <= rule_ids
    (finding,) = run["results"]
    assert finding["ruleId"] == "RA010"
    loc = finding["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] == 2


def test_cli_exit_2_when_linter_crashes(tmp_path, monkeypatch, capsys):
    import repro.analysis.lint as lint_mod

    def boom(*args, **kwargs):
        raise RuntimeError("synthetic rule crash")

    monkeypatch.setattr(lint_mod, "run_lint", boom)
    (tmp_path / "mod.py").write_text("x = 1\n")
    assert lint_mod.main([str(tmp_path)]) == 2
    assert "synthetic rule crash" in capsys.readouterr().err
