"""The tape-index export is periodic, so it can lag TSM (§4.2.5).

PFTool must still restore files migrated *after* the last export: the
Manager falls back to asking TSM directly for objects the index DB does
not know (slow, but correct).  These tests pin that behaviour.
"""

import pytest

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.workloads import small_file_flood

MB = 1_000_000
GB = 1_000_000_000

SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


def build(env):
    return ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=4, n_disk_servers=2, n_tape_drives=2,
                      n_scratch_tapes=8, tape_spec=SPEC),
    )


def cfg():
    return PftoolConfig(num_workers=2, num_readdir=1, num_tapeprocs=2)


def test_restore_with_stale_index_falls_back_to_tsm():
    env = Environment()
    system = build(env)
    paths = small_file_flood(system.archive_fs, "/cold", 6, 10 * MB)
    # migrate WITHOUT refreshing the index (bypass migrate_to_tape)
    env.run(system.hsm.migrate("fta0", paths))
    assert len(system.tapedb) == 0  # the index knows nothing

    stats = env.run(system.retrieve("/cold", "/back", cfg()).done)
    assert stats.tape_files_restored == 6
    assert stats.files_failed == 0
    for i in range(6):
        assert system.scratch_fs.exists(f"/back/small{i:07d}")


def test_periodic_export_catches_up():
    env = Environment()
    system = build(env)
    system.exporter.run_periodic(interval=100.0)
    paths = small_file_flood(system.archive_fs, "/cold", 4, 5 * MB)

    def go():
        yield system.hsm.migrate("fta0", paths)
        yield env.timeout(200.0)  # let at least one export tick pass

    env.run(env.process(go()))
    assert len(system.tapedb) == 4
    loc = system.tapedb.object_for_path(
        "archive", paths[0]
    )
    assert loc is not None
    assert system.exporter.exports >= 2


def test_mixed_fresh_and_stale_entries():
    """Half the files are in the index, half only in TSM — both restore."""
    env = Environment()
    system = build(env)
    paths = small_file_flood(system.archive_fs, "/cold", 8, 5 * MB)
    env.run(system.hsm.migrate("fta0", paths[:4]))
    env.run(system.exporter.run_once())  # index knows the first four
    env.run(system.hsm.migrate("fta1", paths[4:]))  # these are stale
    assert len(system.tapedb) == 4

    stats = env.run(system.retrieve("/cold", "/back", cfg()).done)
    assert stats.tape_files_restored == 8
    assert stats.files_failed == 0
