"""Property tests: the calendar queue is order-equivalent to a flat heap.

The kernel's correctness contract is that ``_CalendarQueue`` pops entries
in the exact total order of the ``(time, priority, key)`` tuples a flat
``heapq`` would produce — same-instant ties, far-future overflow entries
and wheel wrap/collapse cycles included.  Cancellation in the kernel is
event-level tombstoning (the entry stays queued and pops in order with
``callbacks is None``), so at the queue layer a cancelled entry is just
an ordinary item; the environment-level test below exercises that path
end to end with the wheel forced on.
"""

import heapq
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Store
from repro.sim import kernel as K


@contextmanager
def wheel_params(enter, exit_, buckets):
    """Shrink the wheel thresholds so tiny workloads exercise every mode."""
    old = (K._WHEEL_ENTER, K._WHEEL_EXIT, K._WHEEL_BUCKETS)
    K._WHEEL_ENTER, K._WHEEL_EXIT, K._WHEEL_BUCKETS = enter, exit_, buckets
    try:
        yield
    finally:
        K._WHEEL_ENTER, K._WHEEL_EXIT, K._WHEEL_BUCKETS = old


# Times mix a dense grid (forcing same-instant ties and shared buckets),
# arbitrary floats, and far-future spikes (forcing overflow + re-bases).
_TIMES = st.one_of(
    st.integers(min_value=0, max_value=12).map(float),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    st.sampled_from([1e6, 1e9, 1e12]),
)
_PRIORITIES = st.integers(min_value=0, max_value=2)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _TIMES, _PRIORITIES),
        st.just(("pop",)),
        st.just(("peek",)),
    ),
    max_size=200,
)

_PARAMS = st.sampled_from([
    (8, 2, 4),      # constant churn through convert/collapse + wraps
    (16, 4, 8),     # overflow-heavy
    (32, 8, 256),   # realistic bucket count, early conversion
])


def _drain_and_compare(q, ref):
    while ref:
        assert q.pop() == heapq.heappop(ref)
    assert len(q) == 0
    assert not q
    assert q.peek_time() == float("inf")


@settings(max_examples=200, deadline=None)
@given(ops=_OPS, params=_PARAMS)
def test_pop_sequence_matches_reference_heap(ops, params):
    """Arbitrary push/pop/peek interleavings pop in flat-heap order."""
    with wheel_params(*params):
        q = K._CalendarQueue()
        ref: list = []
        seq = 0
        for op in ops:
            if op[0] == "push":
                # key mirrors the kernel's monotone sequence number, so the
                # payload slot is never compared; ties resolve on (t, prio, key)
                item = (op[1], op[2], seq, seq)
                seq += 1
                q.push(item)
                heapq.heappush(ref, item)
            elif op[0] == "peek":
                want = ref[0][0] if ref else float("inf")
                assert q.peek_time() == want
            elif ref:
                assert q.pop() == heapq.heappop(ref)
            assert len(q) == len(ref)
            assert bool(q) == bool(ref)
        _drain_and_compare(q, ref)


@settings(max_examples=200, deadline=None)
@given(
    delays=st.lists(
        st.tuples(
            st.one_of(
                st.just(0.0),  # same-instant cohorts
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.sampled_from([1e7, 1e11]),  # far-future overflow
            ),
            _PRIORITIES,
            st.integers(min_value=0, max_value=3),  # pops between pushes
        ),
        max_size=150,
    ),
    params=_PARAMS,
)
def test_kernel_style_monotone_workload(delays, params):
    """Kernel-shaped usage: pushes at now+delay, now tracks the last pop.

    This is the access pattern ``Environment`` actually produces — times
    never precede the current instant — and drives the wheel through the
    cursor-advance path rather than the push-clamp path.
    """
    with wheel_params(*params):
        q = K._CalendarQueue()
        ref: list = []
        seq = 0
        now = 0.0
        for delay, prio, npops in delays:
            item = (now + delay, prio, seq, seq)
            seq += 1
            q.push(item)
            heapq.heappush(ref, item)
            for _ in range(npops):
                if not ref:
                    break
                got = q.pop()
                assert got == heapq.heappop(ref)
                now = got[0]
        _drain_and_compare(q, ref)


def test_far_future_overflow_migrates_on_wrap():
    """Entries beyond the horizon overflow, then migrate when the wheel
    re-bases onto their era; counters record the life cycle."""
    with wheel_params(8, 2, 4):
        q = K._CalendarQueue()
        ref: list = []
        for i in range(8):
            item = (float(i), 0, i, i)
            q.push(item)
            heapq.heappush(ref, item)
        assert q._wheel  # conversion happened at the enter threshold
        for i in range(8, 16):
            item = (1e9 + i, 0, i, i)  # far beyond the horizon
            q.push(item)
            heapq.heappush(ref, item)
        assert q.overflow_pushes > 0
        _drain_and_compare(q, ref)
        assert q.rebases >= 2  # initial conversion + >=1 wrap re-base
        assert q.migrations > 0


def test_same_instant_spike_defers_conversion():
    """A queue that is all one instant cannot be wheeled; the conversion
    threshold doubles instead of rescanning on every push."""
    with wheel_params(8, 2, 4):
        q = K._CalendarQueue()
        ref: list = []
        for i in range(12):
            item = (5.0, 0, i, i)
            q.push(item)
            heapq.heappush(ref, item)
        assert not q._wheel
        assert q._convert_min_size > 8
        _drain_and_compare(q, ref)


def test_environment_runs_identically_with_wheel_forced():
    """End-to-end: the same workload (timers, stores, cancellations)
    produces identical event counts and completion times whether the
    queue stays a flat heap or is forced through the wheel."""

    def workload():
        env = Environment()
        store = Store(env, capacity=64)
        log = []

        def producer():
            for i in range(120):
                yield env.timeout(0.25 if i % 3 else 0.0)
                yield store.put(i)

        def consumer(cid):
            for _ in range(40):
                item = yield store.get()
                log.append((env.now, cid, item))

        def canceller():
            # race a get against a timer and withdraw the loser: the
            # cancelled get stays tombstoned in the queue until popped
            for _ in range(10):
                get = store.get()
                t = env.timeout(1e-3)
                yield t | get
                if not get.processed:
                    get.cancel()
                else:
                    log.append((env.now, "c", get.value))
                yield env.timeout(0.5)

        for cid in range(3):
            env.process(consumer(cid))
        env.process(producer())
        env.process(canceller())
        env.run()
        return (env.events_processed, env.now, env.instants,
                env.max_instant_batch, log)

    base = workload()
    with wheel_params(8, 2, 4):
        forced = workload()
    assert forced == base
