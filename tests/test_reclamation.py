"""Tests for TSM space reclamation (sparse-volume compaction)."""

import pytest

from repro.sim import Environment
from repro.tapesim import TapeLibrary, TapeSpec
from repro.tsm import TsmServer

MB = 1_000_000

SPEC = TapeSpec(
    native_rate=100e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=1e9, label_verify=2.0, backhitch=1.0,
    capacity=2_000 * MB,  # small tapes so volumes fill fast
)


def make_tsm(env, n_drives=2):
    lib = TapeLibrary(env, n_drives=n_drives, spec=SPEC, n_scratch=8,
                      robot_exchange=3.0)
    return TsmServer(env, lib, txn_time=0.005)


def _fill_and_delete(env, tsm, n=10, size=100 * MB, delete_frac=0.7):
    sess = tsm.open_session("fta0")
    receipts = env.run(
        sess.store_many("fs", [(f"/d/f{i}", size) for i in range(n)])
    )
    vol = receipts[0].volume
    victims = receipts[: int(n * delete_frac)]
    for r in victims:
        env.run(tsm.delete_object(r.object_id))
    survivors = receipts[int(n * delete_frac):]
    return vol, survivors


def test_reclaimable_volume_detection():
    env = Environment()
    tsm = make_tsm(env)
    vol, _ = _fill_and_delete(env, tsm)
    # the volume is still 'filling' for its group -> not yet reclaimable
    assert vol not in tsm.reclaimable_volumes(0.5)
    # force it out of rotation (e.g. operator marks it full)
    tsm.library._filling = {
        k: v for k, v in tsm.library._filling.items() if v != vol
    }
    assert vol in tsm.reclaimable_volumes(0.5)
    assert vol not in tsm.reclaimable_volumes(0.1)  # 30% live > 10%


def test_reclaim_moves_survivors_and_frees_volume():
    env = Environment()
    tsm = make_tsm(env)
    vol, survivors = _fill_and_delete(env, tsm)
    tsm.library._filling = {
        k: v for k, v in tsm.library._filling.items() if v != vol
    }
    moved = env.run(tsm.reclaim_volume(vol))
    assert moved == len(survivors)
    # survivors are still retrievable, now on a different volume
    for r in survivors:
        obj = tsm.locate(r.object_id)
        assert obj is not None
        assert obj.volume != vol
    # the old volume is erased and back in scratch
    cart = tsm.library.volume(vol)
    assert cart.eod == 0
    assert vol in tsm.library.scratch


def test_reclaimed_objects_still_retrievable():
    env = Environment()
    tsm = make_tsm(env)
    vol, survivors = _fill_and_delete(env, tsm)
    tsm.library._filling = {
        k: v for k, v in tsm.library._filling.items() if v != vol
    }
    env.run(tsm.reclaim_volume(vol))
    sess = tsm.open_session("fta1")
    out = env.run(sess.retrieve_many([r.object_id for r in survivors]))
    assert {o.object_id for o in out} == {r.object_id for r in survivors}


def test_reclaim_empty_volume_is_noop_move():
    env = Environment()
    tsm = make_tsm(env)
    vol, survivors = _fill_and_delete(env, tsm, delete_frac=1.0)
    tsm.library._filling = {
        k: v for k, v in tsm.library._filling.items() if v != vol
    }
    moved = env.run(tsm.reclaim_volume(vol))
    assert moved == 0
    assert tsm.library.volume(vol).eod == 0


def test_full_healthy_volume_not_reclaimable():
    env = Environment()
    tsm = make_tsm(env)
    vol, _ = _fill_and_delete(env, tsm, delete_frac=0.0)
    tsm.library._filling = {
        k: v for k, v in tsm.library._filling.items() if v != vol
    }
    assert vol not in tsm.reclaimable_volumes(0.5)
