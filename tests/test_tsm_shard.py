"""Tests for the sharded multi-server TSM store (§6.4 future work)."""

import pytest

from repro.sim import Environment, SimulationError
from repro.tapedb import TapeIndexDB, TsmDbExporter
from repro.tapesim import TapeLibrary, TapeSpec
from repro.tsm import ShardedTsmStore, TsmServer

MB = 1_000_000

SPEC = TapeSpec(
    native_rate=100e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=1e9, label_verify=2.0, backhitch=1.0,
    capacity=800e9,
)


def make_sharded(env, n_servers=2, n_drives=2, txn_time=0.005):
    servers = []
    for _ in range(n_servers):
        lib = TapeLibrary(env, n_drives=n_drives, spec=SPEC, n_scratch=8,
                          robot_exchange=3.0)
        servers.append(TsmServer(env, lib, txn_time=txn_time))
    return ShardedTsmStore(env, servers)


def test_empty_sharded_store_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        ShardedTsmStore(env, [])


def test_path_routing_is_stable_and_spread():
    env = Environment()
    store = make_sharded(env, n_servers=4)
    shards = {store.shard_of_path(f"/p/file{i}") for i in range(200)}
    assert shards == {0, 1, 2, 3}  # every shard gets traffic
    assert store.shard_of_path("/p/x") == store.shard_of_path("/p/x")


def test_object_ids_globally_unique_and_routable():
    env = Environment()
    store = make_sharded(env, n_servers=3)
    sess = store.open_session("fta0")
    items = [(f"/d/f{i}", 1 * MB) for i in range(30)]
    receipts = env.run(store.store_objects(sess, "fs", items))
    assert len(receipts) == 30
    oids = [r.object_id for r in receipts]
    assert len(set(oids)) == 30
    for r in receipts:
        shard = store.shard_of_object(r.object_id)
        assert shard == store.shard_of_path(r.path)
        assert store.locate(r.object_id).path == r.path


def test_store_fans_out_across_member_libraries():
    env = Environment()
    store = make_sharded(env, n_servers=2)
    sess = store.open_session("fta0")
    items = [(f"/d/f{i}", 1 * MB) for i in range(40)]
    env.run(store.store_objects(sess, "fs", items))
    per_server = [len(s.objects) for s in store.servers]
    assert sum(per_server) == 40
    assert all(n > 0 for n in per_server)
    # both shards used their own tape libraries
    assert all(s.library.total_mounts >= 1 for s in store.servers)


def test_retrieve_across_shards():
    env = Environment()
    store = make_sharded(env, n_servers=2)
    sess = store.open_session("fta0")
    items = [(f"/d/f{i}", 2 * MB) for i in range(10)]

    def go():
        receipts = yield store.store_objects(sess, "fs", items)
        out = yield store.retrieve_objects(sess, [r.object_id for r in receipts])
        return receipts, out

    receipts, out = env.run(env.process(go()))
    assert {o.object_id for o in out} == {r.object_id for r in receipts}


def test_aggregate_stays_on_one_shard():
    env = Environment()
    store = make_sharded(env, n_servers=3)
    sess = store.open_session("fta0")
    items = [(f"/agg/f{i}", 1 * MB) for i in range(12)]
    receipts = env.run(store.store_aggregate(sess, "fs", items))
    vols = {r.volume for r in receipts}
    assert len(vols) == 1
    shards = {store.shard_of_object(r.object_id) for r in receipts}
    assert len(shards) == 1


def test_delete_and_export_union():
    env = Environment()
    store = make_sharded(env, n_servers=2)
    sess = store.open_session("fta0")
    receipts = env.run(
        store.store_objects(sess, "fs", [("/a", MB), ("/b", MB), ("/c", MB)])
    )
    assert len(store.objects) == 3
    ok = env.run(store.delete_object(receipts[0].object_id))
    assert ok
    assert len(store.objects) == 2
    rows = list(store.export_rows())
    assert len(rows) == 2


def test_exporter_works_with_sharded_store():
    env = Environment()
    store = make_sharded(env, n_servers=2)
    sess = store.open_session("fta0")
    env.run(store.store_objects(sess, "fs", [("/a", MB), ("/b", MB)]))
    db = TapeIndexDB(env)
    exporter = TsmDbExporter(env, store, db)
    n = env.run(exporter.run_once())
    assert n == 2
    assert db.object_for_path("fs", "/a") is not None


def test_shard_scaling_relieves_txn_bottleneck():
    """§6.4: many small stores saturate one server's transaction engine;
    two servers double the metadata throughput."""

    def run(n_servers):
        env = Environment()
        # huge txn_time so metadata, not tape, is the bottleneck
        store = make_sharded(env, n_servers=n_servers, n_drives=4,
                             txn_time=0.5)
        sess = store.open_session("fta0")
        items = [(f"/d/f{i}", 100_000) for i in range(60)]
        env.run(store.store_objects(sess, "fs", items))
        return env.now

    t1 = run(1)
    t2 = run(2)
    assert t2 < t1 * 0.7


def test_bad_object_id_rejected():
    env = Environment()
    store = make_sharded(env, n_servers=2)
    with pytest.raises(SimulationError):
        store.shard_of_object(10**13 + 5)
